"""Unit tests for the Penn-Treebank-style tokenizer."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import TokenizationError
from repro.nlp.tokenizer import Token, Tokenizer, split_sentences, tokenize


class TestBasicTokenization:
    def test_simple_sentence(self):
        texts = [t.text for t in tokenize("We visit Buffalo")]
        assert texts == ["We", "visit", "Buffalo"]

    def test_trailing_question_mark_is_split(self):
        texts = [t.text for t in tokenize("Where do you go?")]
        assert texts == ["Where", "do", "you", "go", "?"]

    def test_internal_commas_are_split(self):
        texts = [t.text for t in tokenize("Forest Hotel, Buffalo, NY")]
        assert texts == ["Forest", "Hotel", ",", "Buffalo", ",", "NY"]

    def test_double_punctuation(self):
        texts = [t.text for t in tokenize("Really?!")]
        assert texts == ["Really", "?", "!"]

    def test_parentheses(self):
        texts = [t.text for t in tokenize("places (near hotels)")]
        assert texts == ["places", "(", "near", "hotels", ")"]

    def test_indices_are_sequential(self):
        tokens = tokenize("What are the best places?")
        assert [t.index for t in tokens] == list(range(len(tokens)))

    def test_hyphenated_word_stays_whole(self):
        texts = [t.text for t in tokenize("a thrill-ride park")]
        assert "thrill-ride" in texts


class TestContractions:
    def test_negation_clitic(self):
        texts = [t.text for t in tokenize("I don't like it")]
        assert texts == ["I", "do", "n't", "like", "it"]

    def test_are_clitic(self):
        texts = [t.text for t in tokenize("We're hungry")]
        assert texts == ["We", "'re", "hungry"]

    def test_possessive_clitic(self):
        texts = [t.text for t in tokenize("the hotel's pool")]
        assert texts == ["the", "hotel", "'s", "pool"]

    def test_will_clitic(self):
        texts = [t.text for t in tokenize("they'll come")]
        assert texts == ["they", "'ll", "come"]

    def test_cannot_contraction(self):
        texts = [t.text for t in tokenize("We can't go")]
        assert texts == ["We", "ca", "n't", "go"]


class TestAbbreviations:
    def test_initialism_keeps_periods(self):
        texts = [t.text for t in tokenize("Buffalo, N.Y. is cold")]
        assert "N.Y." in texts

    def test_title_abbreviation(self):
        texts = [t.text for t in tokenize("Dr. Smith recommends it")]
        assert texts[0] == "Dr."

    def test_regular_word_loses_period(self):
        texts = [t.text for t in tokenize("We visit Buffalo.")]
        assert texts[-1] == "."
        assert texts[-2] == "Buffalo"


class TestOffsets:
    def test_offsets_recover_surface_text(self):
        text = "What are the best places near Forest Hotel?"
        for tok in tokenize(text):
            assert text[tok.start:tok.end] == tok.text

    def test_offsets_with_contractions(self):
        text = "We don't know"
        tokens = tokenize(text)
        assert [text[t.start:t.end] for t in tokens] == [t.text for t in tokens]

    def test_is_word_flag(self):
        tokens = tokenize("Go now!")
        assert tokens[0].is_word and tokens[1].is_word
        assert not tokens[2].is_word


class TestErrors:
    def test_empty_text_raises(self):
        with pytest.raises(TokenizationError):
            tokenize("")

    def test_whitespace_only_raises(self):
        with pytest.raises(TokenizationError):
            tokenize("   \n\t ")

    def test_non_string_raises(self):
        with pytest.raises(TokenizationError):
            Tokenizer().tokenize(42)  # type: ignore[arg-type]


class TestSentenceSplitting:
    def test_two_sentences(self):
        parts = split_sentences("I like Buffalo. We should visit.")
        assert parts == ["I like Buffalo.", "We should visit."]

    def test_question_and_statement(self):
        parts = split_sentences("Where do we go? Tell me now.")
        assert len(parts) == 2

    def test_abbreviation_does_not_split(self):
        parts = split_sentences("Dr. Smith lives in Buffalo, N.Y. near a park.")
        assert len(parts) == 1

    def test_no_terminal_punctuation(self):
        parts = split_sentences("what camera should I buy")
        assert parts == ["what camera should I buy"]

    def test_empty(self):
        assert split_sentences("  ") == []


class TestTokenizerProperties:
    @given(st.text(alphabet=st.characters(categories=("Lu", "Ll", "Zs", "Po")),
                   min_size=1, max_size=80))
    def test_offsets_always_match_source(self, text):
        try:
            tokens = tokenize(text)
        except TokenizationError:
            return
        for tok in tokens:
            assert text[tok.start:tok.end] == tok.text

    @given(st.lists(st.sampled_from(
        ["we", "visit", "Buffalo", "don't", "places,", "N.Y.", "the",
         "hotel's", "what?", "good"]), min_size=1, max_size=12))
    def test_token_count_at_least_word_count(self, words):
        text = " ".join(words)
        tokens = tokenize(text)
        assert len(tokens) >= len(words)

    @given(st.text(alphabet="abcdefghij ", min_size=1, max_size=60))
    def test_plain_words_round_trip(self, text):
        try:
            tokens = tokenize(text)
        except TokenizationError:
            return
        assert " ".join(t.text for t in tokens) == " ".join(text.split())

    @given(st.text(min_size=0, max_size=100))
    def test_never_crashes_except_tokenization_error(self, text):
        try:
            tokens = tokenize(text)
        except TokenizationError:
            return
        assert all(isinstance(t, Token) for t in tokens)
        assert all(t.end > t.start for t in tokens)
