"""The averaged-perceptron tagger: training, interface, determinism."""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.data.goldnlp import parse_gold_conll
from repro.errors import TaggingError
from repro.nlp.learned import (
    PerceptronTagger,
    default_learned_tagger,
    train_from_gold,
)
from repro.nlp.postag import TaggedToken
from repro.nlp.postag_lexicon import TAGSET
from repro.nlp.tokenizer import tokenize

CORPUS = [
    [("Where", "WRB"), ("do", "VBP"), ("you", "PRP"),
     ("visit", "VB"), ("in", "IN"), ("Buffalo", "NNP"), ("?", ".")],
    [("Where", "WRB"), ("do", "VBP"), ("we", "PRP"),
     ("go", "VB"), ("hiking", "VBG"), ("?", ".")],
    [("Which", "WDT"), ("places", "NNS"), ("are", "VBP"),
     ("interesting", "JJ"), ("?", ".")],
    [("We", "PRP"), ("visit", "VBP"), ("parks", "NNS"),
     ("in", "IN"), ("Buffalo", "NNP"), (".", ".")],
    [("Do", "VBP"), ("you", "PRP"), ("like", "VB"),
     ("interesting", "JJ"), ("places", "NNS"), ("?", ".")],
]


@pytest.fixture(scope="module")
def tagger():
    t = PerceptronTagger(seed=0)
    t.train(CORPUS)
    return t


class TestTraining:
    def test_resubstitution_is_exact(self, tagger):
        for sentence in CORPUS:
            tokens = tokenize(" ".join(t for t, _ in sentence))
            assert [t.text for t in tokens] == [t for t, _ in sentence]
            tagged = tagger.tag(tokens)
            assert [t.tag for t in tagged] == [g for _, g in sentence]

    def test_tags_are_tagged_tokens(self, tagger):
        tagged = tagger.tag("Where do you visit in Buffalo?")
        assert all(isinstance(t, TaggedToken) for t in tagged)
        assert [t.tag for t in tagged] == [
            "WRB", "VBP", "PRP", "VB", "IN", "NNP", ".",
        ]

    def test_unseen_words_get_a_tag_from_the_tagset(self, tagger):
        tagged = tagger.tag("Zebras frolic quixotically?")
        assert all(t.tag in TAGSET for t in tagged)

    def test_known_reflects_the_training_vocabulary(self, tagger):
        assert tagger.known("Buffalo")
        assert tagger.known("buffalo")  # normalized, case-folded
        assert not tagger.known("zebra")

    def test_train_from_gold_sentences(self):
        gold = parse_gold_conll(
            "1\tWhere\tWRB\t4\tadvmod\n"
            "2\tdo\tVBP\t4\taux\n"
            "3\tyou\tPRP\t4\tnsubj\n"
            "4\tvisit\tVB\t0\troot\n"
            "5\t?\t.\t4\tpunct\n"
        )
        t = train_from_gold(gold)
        assert [x.tag for x in t.tag("Where do you visit?")] == [
            "WRB", "VBP", "PRP", "VB", ".",
        ]


class TestErrors:
    def test_untrained_tagger_refuses_to_tag(self):
        with pytest.raises(TaggingError, match="trained"):
            PerceptronTagger().tag("Hello there")

    def test_empty_corpus_rejected(self):
        with pytest.raises(TaggingError, match="empty corpus"):
            PerceptronTagger().train([])
        with pytest.raises(TaggingError, match="empty corpus"):
            PerceptronTagger().train([[], []])

    def test_tag_outside_tagset_rejected(self):
        with pytest.raises(TaggingError, match="outside"):
            PerceptronTagger().train([[("word", "BOGUS")]])

    def test_empty_input_rejected(self, tagger):
        with pytest.raises(TaggingError, match="empty"):
            tagger.tag([])


class TestDeterminism:
    def test_same_seed_trains_identical_models(self):
        a = PerceptronTagger(seed=0)
        b = PerceptronTagger(seed=0)
        a.train(CORPUS)
        b.train(CORPUS)
        assert a._weights == b._weights
        assert a._tagdict == b._tagdict
        assert a._classes == b._classes

    def test_tagging_is_stable_across_calls(self, tagger):
        text = "Do zebras visit interesting parks in Buffalo?"
        first = [(t.text, t.tag) for t in tagger.tag(text)]
        second = [(t.text, t.tag) for t in tagger.tag(text)]
        assert first == second

    def test_default_learned_tagger_is_cached(self):
        assert default_learned_tagger() is default_learned_tagger()

    def test_training_is_byte_identical_across_processes(self, tagger,
                                                         tmp_path):
        """A fresh interpreter trains the exact same model.

        Guards against accidental dependence on hash randomization or
        dict iteration order: the weights must come out identical under
        a different PYTHONHASHSEED.
        """
        script = tmp_path / "train.py"
        script.write_text(
            "import json, sys\n"
            "from repro.nlp.learned import PerceptronTagger\n"
            "corpus = json.loads(sys.argv[1])\n"
            "t = PerceptronTagger(seed=0)\n"
            "t.train([[tuple(p) for p in s] for s in corpus])\n"
            "print(json.dumps(\n"
            "    {'weights': t._weights, 'tagdict': t._tagdict},\n"
            "    sort_keys=True))\n",
            "utf-8",
        )
        src = Path(__file__).resolve().parents[2] / "src"
        result = subprocess.run(
            [sys.executable, str(script), json.dumps(CORPUS)],
            capture_output=True, text=True,
            env={"PYTHONPATH": str(src), "PYTHONHASHSEED": "12345"},
        )
        assert result.returncode == 0, result.stderr
        remote = json.loads(result.stdout)
        local = json.loads(json.dumps(
            {"weights": tagger._weights, "tagdict": tagger._tagdict},
            sort_keys=True,
        ))
        assert remote == local
