"""Service-level tests: concurrency determinism, caching, stats.

The determinism test is the contract the E9 throughput bench relies on:
a shared translator behind an 8-worker batch must produce byte-identical
queries to a one-at-a-time loop, question for question.
"""

import threading

import pytest

from repro import NL2CM, TranslationService, VerificationError
from repro.data.corpus import supported_questions
from repro.data.ontologies import load_merged_ontology
from repro.errors import ReproError
from repro.freya.generator import FeedbackStore
from repro.rdf.terms import IRI
from repro.service import TranslationCache
from repro.ui.interaction import AutoInteraction, ScriptedInteraction


@pytest.fixture(scope="module")
def ontology():
    return load_merged_ontology()


@pytest.fixture(scope="module")
def corpus_texts():
    return [q.text for q in supported_questions()]


class TestDeterminism:
    def test_sequential_and_concurrent_batch_agree(
        self, ontology, corpus_texts
    ):
        sequential = NL2CM(ontology=ontology)
        expected = [sequential.translate(t).query_text
                    for t in corpus_texts]

        service = TranslationService(
            NL2CM(ontology=ontology), workers=8, cache=512
        )
        items = service.translate_batch(corpus_texts, workers=8)

        assert [i.text for i in items] == corpus_texts
        assert all(i.ok for i in items)
        assert [i.query_text for i in items] == expected

    def test_repeated_batches_stay_identical(self, ontology, corpus_texts):
        texts = corpus_texts[:10]
        service = TranslationService(
            NL2CM(ontology=ontology), workers=8, cache=512
        )
        first = [i.query_text for i in service.translate_batch(texts)]
        second = [i.query_text for i in service.translate_batch(texts)]
        assert first == second


class TestCachingBehaviour:
    def test_cache_hit_returns_same_result_object(self, ontology):
        service = TranslationService(NL2CM(ontology=ontology), cache=8)
        text = "Where do you visit in Buffalo?"
        first = service.translate(text)
        second = service.translate(text)
        assert first is second
        stats = service.stats()
        assert stats.translated == 1
        assert stats.served_from_cache == 1
        assert stats.cache.hits == 1

    def test_whitespace_variants_share_an_entry(self, ontology):
        service = TranslationService(NL2CM(ontology=ontology), cache=8)
        first = service.translate("Where do you visit in Buffalo?")
        second = service.translate("Where  do you visit   in Buffalo?")
        assert first is second

    def test_single_flight_dedup_in_one_batch(self, ontology):
        service = TranslationService(
            NL2CM(ontology=ontology), workers=4, cache=8
        )
        text = "Where do you visit in Buffalo?"
        items = service.translate_batch([text] * 6)
        assert all(i.ok for i in items)
        assert len({id(i.result) for i in items}) == 1
        assert service.stats().translated == 1

    def test_scripted_provider_bypasses_cache(self, ontology):
        service = TranslationService(NL2CM(ontology=ontology), cache=8)
        text = "Where do you visit in Buffalo?"
        provider = ScriptedInteraction([])
        first = service.translate(text, provider)
        second = service.translate(text, provider)
        assert first is not second
        assert service.stats().served_from_cache == 0

    def test_cache_disabled_service(self, ontology):
        service = TranslationService(NL2CM(ontology=ontology), cache=None)
        text = "Where do you visit in Buffalo?"
        first = service.translate(text)
        second = service.translate(text)
        assert first is not second
        assert service.stats().cache is None

    def test_warm_then_serve_from_cache(self, ontology, corpus_texts):
        texts = corpus_texts[:5]
        service = TranslationService(
            NL2CM(ontology=ontology), workers=4, cache=64
        )
        warmed = service.warm(texts)
        assert warmed == len(texts)
        service.reset_stats()
        items = service.translate_batch(texts)
        assert all(i.ok for i in items)
        stats = service.stats()
        assert stats.translated == 0
        assert stats.served_from_cache == len(texts)
        assert stats.cache_hit_rate == 1.0

    def test_warm_requires_cache(self, ontology):
        service = TranslationService(NL2CM(ontology=ontology), cache=None)
        with pytest.raises(ReproError):
            service.warm(["Where do you visit in Buffalo?"])

    def test_lru_eviction_limits_entries(self, ontology, corpus_texts):
        service = TranslationService(
            NL2CM(ontology=ontology), workers=2,
            cache=TranslationCache(capacity=3),
        )
        service.translate_batch(corpus_texts[:6])
        stats = service.stats()
        assert stats.cache.size == 3
        assert stats.cache.evictions == 3


class TestErrorsAndStats:
    def test_translate_raises_and_counts_errors(self, ontology):
        service = TranslationService(NL2CM(ontology=ontology), cache=8)
        with pytest.raises(VerificationError):
            service.translate("How many parks are in Buffalo?")
        stats = service.stats()
        assert stats.errors == 1
        assert stats.translated == 0
        # Errors are never cached.
        assert stats.cache.size == 0

    def test_batch_captures_errors_per_item(self, ontology):
        service = TranslationService(
            NL2CM(ontology=ontology), workers=4, cache=8
        )
        items = service.translate_batch([
            "Where do you visit in Buffalo?",
            "How many parks are in Buffalo?",
            "Where do you visit in Buffalo?",
        ])
        assert items[0].ok and items[2].ok
        assert not items[1].ok
        assert isinstance(items[1].error, VerificationError)
        assert items[0].query_text == items[2].query_text

    def test_stage_aggregates_cover_the_pipeline(self, ontology):
        service = TranslationService(NL2CM(ontology=ontology), cache=8)
        service.translate("Where do you visit in Buffalo?")
        stats = service.stats()
        stages = stats.stages
        for stage in ("verification", "nl-parsing", "ix-detection",
                      "query-composition", "final-query"):
            assert stages[stage].count == 1
            assert stages[stage].total_seconds >= 0.0
        # Stage totals are *self-times*: ix-detection's covering
        # duration lives in the trace; its StageStat only carries its
        # own orchestration time, marked non-leaf.
        assert not stages["ix-detection"].leaf
        assert stages["ix-finder"].leaf and stages["ix-creator"].leaf
        assert "pipeline-overhead" in stages
        # Self-times tile each request: the regression the span model
        # exists to enforce — stage totals can never exceed the busy
        # time (the old flat trace double-counted ix-detection here).
        total = sum(s.total_seconds for s in stages.values())
        assert total <= stats.busy_seconds + 1e-9
        assert total == pytest.approx(stats.busy_seconds, rel=1e-6)

    def test_workers_must_be_positive(self, ontology):
        with pytest.raises(ValueError):
            TranslationService(NL2CM(ontology=ontology), workers=0)


class TestFeedbackStoreConcurrency:
    def test_concurrent_record_and_boost(self):
        store = FeedbackStore()
        errors: list[Exception] = []

        def writer(worker: int) -> None:
            try:
                for i in range(300):
                    store.record(
                        f"phrase {worker} {i % 10}",
                        IRI(f"http://x/e{worker}-{i % 10}"),
                    )
                    store.boost(f"phrase {worker} {i % 10}", [])
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=writer, args=(w,)) for w in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        # 8 workers x 10 distinct phrases each survived the storm.
        assert len(store.snapshot()) == 80

    def test_shared_feedback_store_is_per_translator_state(self):
        store = FeedbackStore()
        store.record("buffalo", IRI("http://x/Buffalo_NY"))
        assert store.snapshot() == {"buffalo": IRI("http://x/Buffalo_NY")}
        # Equality ignores the lock.
        assert FeedbackStore(choices=dict(store.snapshot())) == store

    def test_auto_interaction_fingerprint_is_stable(self):
        a = AutoInteraction()
        b = AutoInteraction()
        assert a.cache_fingerprint() == b.cache_fingerprint()
        assert (AutoInteraction(default_limit=3).cache_fingerprint()
                != a.cache_fingerprint())


class TestUnexpectedExceptionAudit:
    """Regression: a non-ReproError escaping the translator used to
    corrupt the outcome books and poison the batch executor."""

    QUESTION = "Where do you go hiking in the winter?"

    class BrokenProvider:
        """A provider whose first ask raises a programming error."""

        def __init__(self):
            self.calls = 0

        def ask(self, request):
            self.calls += 1
            raise RuntimeError("bug in the provider")

    def test_single_translate_counts_then_reraises_raw(self, ontology):
        service = TranslationService(NL2CM(ontology=ontology))
        with pytest.raises(RuntimeError):
            service.translate(self.QUESTION, self.BrokenProvider())
        stats = service.stats()
        assert stats.errors == 1
        assert stats.requests == stats.accounted == 1

    def test_batch_wraps_per_item_and_keeps_identity(self, ontology):
        from repro.errors import UnexpectedTranslationError

        service = TranslationService(NL2CM(ontology=ontology), workers=3)
        questions = [
            self.QUESTION,
            "Which museums are popular with locals?",
            "Do you like the Buffalo Zoo?",
        ]
        items = service.translate_batch(
            questions, interaction=self.BrokenProvider(),
        )
        assert len(items) == 3
        for item in items:
            assert not item.ok
            assert isinstance(item.error, UnexpectedTranslationError)
            assert isinstance(item.error, ReproError)
            assert isinstance(item.error.cause, RuntimeError)
        stats = service.stats()
        assert stats.errors == 3
        assert stats.requests == stats.accounted == 3

        # The executor survived: the same service still translates.
        healthy = service.translate_batch([self.QUESTION])
        assert healthy[0].ok
        stats = service.stats()
        assert stats.requests == stats.accounted == 4


class TestPlannerStats:
    def test_plan_cache_counters_surface_in_stats(self, ontology):
        from repro.rdf.sparql import TriplePattern
        from repro.rdf.terms import Variable

        nl2cm = NL2CM(ontology=ontology, planner="cost")
        service = TranslationService(nl2cm, cache=None)
        bgp = [TriplePattern(
            Variable("x"), IRI("http://repro.example/kb/instanceOf"),
            IRI("http://repro.example/kb/Place"),
        )]
        list(nl2cm.planner.solutions(ontology.store, bgp))
        list(nl2cm.planner.solutions(ontology.store, bgp))
        stats = service.stats()
        assert stats.plan_cache_misses == 1
        assert stats.plan_cache_hits == 1
        assert stats.plans_compiled == 1
        assert stats.plan_cache_hit_rate == 0.5
        # The counters are also mirrored into the service registry.
        cache = service.registry.get("planner_plan_cache_total")
        assert cache.value(result="hit") == 1

    def test_greedy_translator_reports_zero_plan_traffic(self, ontology):
        service = TranslationService(
            NL2CM(ontology=ontology, planner="greedy"), cache=None
        )
        service.translate("Where do you visit in Buffalo?")
        stats = service.stats()
        assert stats.plans_compiled == 0
        assert stats.plan_cache_hit_rate == 0.0

    def test_admin_panel_shows_plan_line(self, ontology):
        from repro.rdf.sparql import TriplePattern
        from repro.rdf.terms import Variable
        from repro.ui.admin import render_service_stats

        nl2cm = NL2CM(ontology=ontology, planner="cost")
        service = TranslationService(nl2cm, cache=None)
        bgp = [TriplePattern(
            Variable("x"), IRI("http://repro.example/kb/instanceOf"),
            Variable("t"),
        )]
        list(nl2cm.planner.solutions(ontology.store, bgp))
        panel = render_service_stats(service.stats())
        assert "query plans: 1 compiled" in panel

    def test_planner_mode_validation(self, ontology):
        with pytest.raises(ValueError):
            NL2CM(ontology=ontology, planner="fastest")
