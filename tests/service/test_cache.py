"""Unit tests for the bounded LRU translation cache."""

import threading
from types import SimpleNamespace

import pytest

from repro.service.cache import TranslationCache

FP = "auto:limit=5:threshold=0.1"


def _result(query_text="SELECT VARIABLES", degraded=False,
            lint_errors=False):
    """A minimal cached-value stand-in with the duck-typed surface the
    warm-restart protocol inspects."""
    return SimpleNamespace(
        query_text=query_text,
        trace=SimpleNamespace(degraded=degraded),
        lint=SimpleNamespace(has_errors=lint_errors),
    )


class TestKeying:
    def test_whitespace_normalized(self):
        cache = TranslationCache(capacity=4)
        cache.put("Where  do you\tvisit in Buffalo?", FP, "r")
        assert cache.get("Where do you visit in Buffalo?", FP) == "r"

    def test_case_preserved(self):
        # Capitalization drives proper-noun detection, so "buffalo"
        # and "Buffalo" must not share a cache slot.
        cache = TranslationCache(capacity=4)
        cache.put("Where do you visit in Buffalo?", FP, "proper")
        assert cache.get("where do you visit in buffalo?", FP) is None

    def test_fingerprint_partitions_entries(self):
        cache = TranslationCache(capacity=4)
        cache.put("q", "auto:limit=5:threshold=0.1", "five")
        cache.put("q", "auto:limit=3:threshold=0.1", "three")
        assert cache.get("q", "auto:limit=5:threshold=0.1") == "five"
        assert cache.get("q", "auto:limit=3:threshold=0.1") == "three"


class TestLRU:
    def test_eviction_order_is_least_recently_used(self):
        cache = TranslationCache(capacity=2)
        cache.put("a", FP, 1)
        cache.put("b", FP, 2)
        assert cache.get("a", FP) == 1   # refresh "a"
        cache.put("c", FP, 3)            # evicts "b"
        assert cache.get("b", FP) is None
        assert cache.get("a", FP) == 1
        assert cache.get("c", FP) == 3
        assert cache.stats().evictions == 1

    def test_capacity_bound_holds(self):
        cache = TranslationCache(capacity=3)
        for i in range(10):
            cache.put(f"q{i}", FP, i)
        assert len(cache) == 3
        assert cache.stats().evictions == 7

    def test_put_refreshes_existing_entry(self):
        cache = TranslationCache(capacity=2)
        cache.put("a", FP, 1)
        cache.put("b", FP, 2)
        cache.put("a", FP, 10)           # refresh, not insert
        cache.put("c", FP, 3)            # evicts "b", the LRU
        assert cache.get("a", FP) == 10
        assert cache.get("b", FP) is None

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            TranslationCache(capacity=0)


class TestCounters:
    def test_hit_miss_counters_and_rate(self):
        cache = TranslationCache(capacity=4)
        assert cache.get("q", FP) is None
        cache.put("q", FP, "r")
        assert cache.get("q", FP) == "r"
        assert cache.get("q", FP) == "r"
        stats = cache.stats()
        assert (stats.hits, stats.misses) == (2, 1)
        assert stats.hit_rate == pytest.approx(2 / 3)

    def test_warm_does_not_count_as_traffic(self):
        cache = TranslationCache(capacity=4)
        n = cache.warm([("a", FP, 1), ("b", FP, 2)])
        assert n == 2
        stats = cache.stats()
        assert (stats.hits, stats.misses) == (0, 0)
        assert stats.size == 2

    def test_clear_and_reset(self):
        cache = TranslationCache(capacity=4)
        cache.put("a", FP, 1)
        cache.get("a", FP)
        cache.reset_counters()
        stats = cache.stats()
        assert (stats.hits, stats.misses, stats.size) == (0, 0, 1)
        cache.clear()
        assert len(cache) == 0

    def test_empty_cache_hit_rate_is_zero(self):
        assert TranslationCache(capacity=1).stats().hit_rate == 0.0


class TestWarmRestartProtocol:
    def test_export_hot_is_lru_ordered_hottest_first(self):
        cache = TranslationCache(capacity=8)
        for name in ("a", "b", "c"):
            cache.put(name, FP, _result(query_text=f"Q-{name}"))
        cache.get("a", FP)  # "a" becomes the hottest
        exported = cache.export_hot(2)
        assert [text for text, _, _ in exported] == ["a", "c"]
        assert exported[0] == ("a", FP, "Q-a")

    def test_export_skips_values_without_query_text(self):
        cache = TranslationCache(capacity=8)
        cache.put("plain", FP, "not a result object")
        cache.put("real", FP, _result(query_text="Q"))
        assert cache.export_hot(10) == [("real", FP, "Q")]

    def test_export_does_not_touch_counters_or_order(self):
        cache = TranslationCache(capacity=2)
        cache.put("old", FP, _result())
        cache.put("new", FP, _result())
        cache.export_hot(2)
        stats = cache.stats()
        assert (stats.hits, stats.misses) == (0, 0)
        cache.put("third", FP, _result())  # evicts "old", still LRU
        assert cache.get("old", FP) is None

    def test_seed_counts_warmed_not_hits_or_insertions(self):
        cache = TranslationCache(capacity=8)
        warmed, refused = cache.seed([
            ("a", FP, _result()), ("b", FP, _result()),
        ])
        assert (warmed, refused) == (2, 0)
        stats = cache.stats()
        assert stats.warmed == 2
        assert stats.insertions == 0
        assert (stats.hits, stats.misses) == (0, 0)
        assert stats.hit_rate == 0.0
        assert stats.size == 2
        # Seeded entries serve real lookups like any other entry.
        assert cache.get("a", FP).query_text == "SELECT VARIABLES"

    def test_seed_refuses_degraded_and_lint_error_results(self):
        cache = TranslationCache(capacity=8)
        warmed, refused = cache.seed([
            ("bad1", FP, _result(degraded=True)),
            ("bad2", FP, _result(lint_errors=True)),
            ("good", FP, _result()),
        ])
        assert (warmed, refused) == (1, 2)
        assert cache.get("bad1", FP) is None
        assert cache.get("bad2", FP) is None
        assert cache.get("good", FP) is not None

    def test_seed_never_overwrites_a_live_entry(self):
        cache = TranslationCache(capacity=8)
        live = _result(query_text="LIVE")
        cache.put("q", FP, live)
        warmed, refused = cache.seed([("q", FP, _result("STALE"))])
        assert (warmed, refused) == (0, 0)
        assert cache.get("q", FP) is live

    def test_seed_respects_capacity_and_counts_evictions(self):
        cache = TranslationCache(capacity=2)
        warmed, _ = cache.seed([
            (f"q{i}", FP, _result()) for i in range(5)
        ])
        assert warmed == 5
        assert len(cache) == 2
        assert cache.stats().evictions == 3

    def test_clear_and_reset_zero_warmed(self):
        cache = TranslationCache(capacity=4)
        cache.seed([("a", FP, _result())])
        cache.reset_counters()
        assert cache.stats().warmed == 0
        cache.seed([("b", FP, _result())])
        cache.clear()
        assert cache.stats().warmed == 0

    def test_export_seed_roundtrip_between_caches(self):
        donor = TranslationCache(capacity=8)
        for name in ("a", "b", "c"):
            donor.put(name, FP, _result(query_text=f"Q-{name}"))
        fresh = TranslationCache(capacity=8)
        warmed, refused = fresh.seed([
            (text, fp, _result(query_text=query))
            for text, fp, query in donor.export_hot(10)
        ])
        assert (warmed, refused) == (3, 0)
        assert fresh.get("b", FP).query_text == "Q-b"


class TestThreadSafety:
    def test_concurrent_put_get_respects_capacity(self):
        cache = TranslationCache(capacity=16)
        errors: list[Exception] = []

        def hammer(worker: int) -> None:
            try:
                for i in range(200):
                    cache.put(f"q{worker}-{i % 24}", FP, i)
                    cache.get(f"q{worker}-{(i + 7) % 24}", FP)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=hammer, args=(w,)) for w in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(cache) <= 16
        stats = cache.stats()
        assert stats.hits + stats.misses == 8 * 200
