"""Counter invariants under concurrent load.

Every request's outcome counters are incremented in one critical
section, and ``stats()`` snapshots under the same lock — so the
accounting identity

    requests == translated + served_from_cache + deduplicated + errors

must hold in *every* snapshot, even ones taken mid-batch from another
thread, and ``served_from_cache`` can never exceed the cache's own hit
counter (the hit is counted before the request is).
"""

import random
import threading

import pytest

from repro import MetricsRegistry, NL2CM, TranslationService
from repro.data.corpus import supported_questions
from repro.data.ontologies import load_merged_ontology

WORKERS = 8
BATCHES_PER_WORKER = 6


@pytest.fixture(scope="module")
def ontology():
    return load_merged_ontology()


@pytest.fixture(scope="module")
def corpus_texts():
    return [q.text for q in supported_questions()]


class TestCounterInvariants:
    def test_stats_consistent_under_hammering(
        self, ontology, corpus_texts
    ):
        registry = MetricsRegistry()
        service = TranslationService(
            NL2CM(ontology=ontology), workers=4, cache=64,
            registry=registry,
        )
        unsupported = "How many parks are in Buffalo?"
        stop = threading.Event()
        failures: list[str] = []

        def hammer(worker: int) -> None:
            rng = random.Random(worker)
            try:
                for _ in range(BATCHES_PER_WORKER):
                    batch = rng.choices(corpus_texts, k=6)
                    batch.append(unsupported)
                    batch.append(batch[0])  # guarantee one duplicate
                    service.translate_batch(batch)
            except Exception as exc:  # pragma: no cover - failure path
                failures.append(f"worker {worker}: {exc!r}")

        def observe() -> None:
            try:
                while not stop.is_set():
                    stats = service.stats()
                    if stats.requests != stats.accounted:
                        failures.append(
                            f"torn snapshot: requests={stats.requests} "
                            f"accounted={stats.accounted}"
                        )
                    if stats.served_from_cache > stats.cache.hits:
                        failures.append(
                            "snapshot shows more cache-served requests "
                            f"than cache hits: "
                            f"{stats.served_from_cache} > "
                            f"{stats.cache.hits}"
                        )
            except Exception as exc:  # pragma: no cover - failure path
                failures.append(f"observer: {exc!r}")

        workers = [
            threading.Thread(target=hammer, args=(w,))
            for w in range(WORKERS)
        ]
        observer = threading.Thread(target=observe)
        observer.start()
        for t in workers:
            t.start()
        for t in workers:
            t.join()
        stop.set()
        observer.join()

        assert not failures, failures[:5]
        stats = service.stats()
        assert stats.requests == WORKERS * BATCHES_PER_WORKER * 8
        assert stats.requests == (
            stats.translated + stats.served_from_cache
            + stats.deduplicated + stats.errors
        )
        assert stats.errors >= WORKERS * BATCHES_PER_WORKER
        assert stats.served_from_cache <= stats.cache.hits

    def test_reset_during_traffic_keeps_identity(
        self, ontology, corpus_texts
    ):
        service = TranslationService(
            NL2CM(ontology=ontology), workers=4, cache=64
        )
        failures: list[str] = []
        stop = threading.Event()

        def traffic(worker: int) -> None:
            rng = random.Random(worker)
            try:
                for _ in range(4):
                    service.translate_batch(
                        rng.choices(corpus_texts, k=5)
                    )
            except Exception as exc:  # pragma: no cover - failure path
                failures.append(repr(exc))

        def resetter() -> None:
            while not stop.is_set():
                service.reset_stats()
                stats = service.stats()
                if stats.requests != stats.accounted:
                    failures.append(
                        f"after reset: requests={stats.requests} "
                        f"accounted={stats.accounted}"
                    )

        threads = [
            threading.Thread(target=traffic, args=(w,))
            for w in range(WORKERS)
        ]
        resetting = threading.Thread(target=resetter)
        resetting.start()
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        stop.set()
        resetting.join()
        assert not failures, failures[:5]
