"""Service observability: registry wiring, exposition, honest counters.

The acceptance spine of the observability layer:

* a warmed 50-question batch's exposition round-trips through the
  strict Prometheus text parser;
* per-stage self-time sums agree with ``busy_seconds`` within 1%
  (the span model makes them agree exactly);
* ``warm()`` reports entries actually inserted;
* batch single-flight duplicates are ``deduplicated``, not
  ``served_from_cache`` — even with caching disabled.
"""

import pytest

from repro import MetricsRegistry, NL2CM, TranslationService
from repro.data.corpus import supported_questions
from repro.data.ontologies import load_merged_ontology
from repro.errors import ReproError
from repro.obs import SlowQueryLog, parse_prometheus_text


@pytest.fixture(scope="module")
def ontology():
    return load_merged_ontology()


@pytest.fixture(scope="module")
def corpus_texts():
    return [q.text for q in supported_questions()]


@pytest.fixture(scope="module")
def warmed(ontology, corpus_texts):
    """A service whose cache was warmed, then hit with 50 questions."""
    registry = MetricsRegistry()
    service = TranslationService(
        NL2CM(ontology=ontology), workers=8, cache=256,
        registry=registry,
    )
    inserted = service.warm(corpus_texts)
    # 50 questions: the corpus cycled, so every one is a cache hit.
    batch = [corpus_texts[i % len(corpus_texts)] for i in range(50)]
    items = service.translate_batch(batch)
    # Snapshot immediately: later tests keep using the service.
    return service, registry, inserted, items, service.stats()


class TestWarmedBatchExposition:
    def test_warm_reports_entries_actually_inserted(
        self, warmed, corpus_texts
    ):
        _, _, inserted, _, _ = warmed
        assert inserted == len(corpus_texts)

    def test_batch_served_entirely_without_fresh_translations(
        self, warmed
    ):
        _, _, _, items, stats = warmed
        assert all(item.ok for item in items)
        assert stats.translated == len(supported_questions())
        assert stats.served_from_cache + stats.deduplicated == 50
        assert stats.served_from_cache <= stats.cache.hits

    def test_second_warm_inserts_nothing(self, warmed, corpus_texts):
        service, _, _, _, _ = warmed
        assert service.warm(corpus_texts) == 0

    def test_exposition_round_trips_through_parser(self, warmed):
        _, registry, _, _, _ = warmed
        parsed = parse_prometheus_text(registry.expose())
        assert parsed["nl2cm_requests_total"]["type"] == "counter"
        assert parsed["nl2cm_translate_seconds"]["type"] == "histogram"
        samples = parsed["nl2cm_request_outcomes_total"]["samples"]
        total = parsed["nl2cm_requests_total"]["samples"][
            ("nl2cm_requests_total", ())
        ]
        assert sum(samples.values()) == total
        # Histogram series are complete: +Inf bucket == count.
        h = parsed["nl2cm_translate_seconds"]["samples"]
        assert h[
            ("nl2cm_translate_seconds_bucket", (("le", "+Inf"),))
        ] == h[("nl2cm_translate_seconds_count", ())]

    def test_stage_sums_agree_with_busy_seconds_within_1pct(
        self, warmed
    ):
        service, registry, _, _, _ = warmed
        stats = service.stats()
        stage_total = sum(
            s.total_seconds for s in stats.stages.values()
        )
        assert stats.busy_seconds > 0
        assert stage_total == pytest.approx(
            stats.busy_seconds, rel=0.01
        )
        # And the same holds for the raw exposed histogram sums.
        parsed = parse_prometheus_text(registry.expose())
        exposed = sum(
            value
            for (name, _), value
            in parsed["nl2cm_stage_seconds"]["samples"].items()
            if name == "nl2cm_stage_seconds_sum"
        )
        busy = parsed["nl2cm_translate_seconds"]["samples"][
            ("nl2cm_translate_seconds_sum", ())
        ]
        assert exposed == pytest.approx(busy, rel=0.01)

    def test_cache_gauges_reflect_live_state(self, warmed):
        service, registry, _, _, _ = warmed
        size = registry.get("nl2cm_cache_size")
        assert size.value() == float(len(service.cache))
        capacity = registry.get("nl2cm_cache_capacity")
        assert capacity.value() == 256.0


class TestHonestCounters:
    def test_duplicates_without_cache_count_as_deduplicated(
        self, ontology
    ):
        service = TranslationService(
            NL2CM(ontology=ontology), workers=4, cache=None
        )
        question = "Where do you visit in Buffalo?"
        items = service.translate_batch([question] * 4)
        assert all(item.ok for item in items)
        stats = service.stats()
        assert stats.translated == 1
        assert stats.deduplicated == 3
        assert stats.served_from_cache == 0  # there is no cache
        assert stats.cache is None
        assert stats.requests == stats.accounted == 4

    def test_errors_deduplicate_too(self, ontology):
        service = TranslationService(
            NL2CM(ontology=ontology), workers=4, cache=8
        )
        items = service.translate_batch(
            ["How many parks are in Buffalo?"] * 3
        )
        assert not any(item.ok for item in items)
        stats = service.stats()
        assert stats.errors == 3
        assert stats.deduplicated == 0
        assert stats.requests == stats.accounted == 3

    def test_warm_excludes_rejected_questions(self, ontology):
        service = TranslationService(NL2CM(ontology=ontology), cache=8)
        inserted = service.warm([
            "Where do you visit in Buffalo?",
            "How many parks are in Buffalo?",   # unsupported: no entry
            "Where do you visit in Buffalo?",   # duplicate: no entry
        ])
        assert inserted == 1

    def test_warm_without_cache_rejected(self, ontology):
        service = TranslationService(
            NL2CM(ontology=ontology), cache=None
        )
        with pytest.raises(ReproError, match="caching disabled"):
            service.warm(["Where do you visit in Buffalo?"])

    def test_reset_stats_zeroes_registry_and_cache_counters(
        self, ontology
    ):
        registry = MetricsRegistry()
        service = TranslationService(
            NL2CM(ontology=ontology), cache=8, registry=registry
        )
        service.translate("Where do you visit in Buffalo?")
        service.translate("Where do you visit in Buffalo?")
        assert service.stats().requests == 2
        service.reset_stats()
        stats = service.stats()
        assert stats.requests == 0
        assert stats.cache.hits == stats.cache.misses == 0
        assert stats.cache.size == 1  # entries survive the reset
        # The registry keeps its registrations, just zeroed.
        assert registry.get("nl2cm_requests_total").value() == 0.0


class TestSlowLogIntegration:
    def test_threshold_zero_logs_every_fresh_translation(
        self, ontology
    ):
        slow = SlowQueryLog(threshold_ms=0)
        service = TranslationService(
            NL2CM(ontology=ontology), cache=8, slow_log=slow
        )
        question = "Where do you visit in Buffalo?"
        service.translate(question)
        service.translate(question)  # cache hit: no pipeline, no entry
        assert slow.seen == 1
        assert service.stats().slow_queries == 1
        entry = slow.entries()[0]
        assert entry.text == question
        assert "ix-detection" in entry.tree

    def test_threshold_filters(self, ontology):
        service = TranslationService(
            NL2CM(ontology=ontology), cache=8, slow_log=10_000.0
        )
        service.translate("Where do you visit in Buffalo?")
        assert service.slow_log.seen == 0
        assert service.stats().slow_queries == 0


class TestSharedRegistry:
    def test_two_services_aggregate_into_one_registry(self, ontology):
        registry = MetricsRegistry()
        nl2cm = NL2CM(ontology=ontology)
        a = TranslationService(nl2cm, cache=8, registry=registry)
        b = TranslationService(nl2cm, cache=8, registry=registry)
        a.translate("Where do you visit in Buffalo?")
        b.translate("Where do you visit in Buffalo?")
        assert registry.get("nl2cm_requests_total").value() == 2.0
        # Each service's stats view reads the shared totals.
        assert a.stats().requests == b.stats().requests == 2
