"""Property-based fuzzing of the full translation pipeline.

The translator's contract: for any input it either returns a valid,
round-trippable OASSIS-QL query or raises a :class:`ReproError`
subclass — never a bare exception, never an unparseable query.  The
generators below combine question templates with slot fillers (both
in-KB and out-of-KB) to explore constructions systematically, plus a
raw-text generator for garbage input.
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import NL2CM
from repro.errors import ReproError
from repro.oassisql import parse_oassisql

NL2CM_INSTANCE = NL2CM()

PLACES = ["Buffalo", "Paris", "Las Vegas", "Delaware Park", "Timbuktu",
          "the Eiffel Tower"]
THINGS = ["places", "hotels", "museums", "dishes", "cameras", "gifts",
          "zorblatts", "souvenirs", "parks"]
OPINIONS = ["interesting", "good", "romantic", "boring", "overpriced",
            "beautiful", "mysterious"]
VERBS = ["visit", "eat", "buy", "see", "recommend", "avoid", "try"]
SUBJECTS = ["you", "we", "people", "locals", "teenagers", "your kids"]
TIMES = ["in the fall", "in the winter", "for breakfast",
         "on weekends", ""]

templates = st.one_of(
    st.tuples(st.sampled_from(OPINIONS), st.sampled_from(THINGS),
              st.sampled_from(PLACES)).map(
        lambda t: f"What are the most {t[0]} {t[1]} in {t[2]}?"
    ),
    st.tuples(st.sampled_from(SUBJECTS), st.sampled_from(VERBS),
              st.sampled_from(PLACES), st.sampled_from(TIMES)).map(
        lambda t: f"Where do {t[0]} {t[1]} in {t[2]} {t[3]}?".replace(
            "  ", " ").replace(" ?", "?")
    ),
    st.tuples(st.sampled_from(THINGS), st.sampled_from(SUBJECTS),
              st.sampled_from(VERBS)).map(
        lambda t: f"Which {t[0]} should {t[1]} {t[2]}?"
    ),
    st.tuples(st.sampled_from(PLACES), st.sampled_from(OPINIONS)).map(
        lambda t: f"Is {t[0]} {t[1]}?"
    ),
    st.tuples(st.sampled_from(VERBS), st.sampled_from(THINGS),
              st.sampled_from(TIMES)).map(
        lambda t: f"Do you {t[0]} {t[1]} {t[2]}?".replace("  ", " ")
        .replace(" ?", "?")
    ),
)


class TestTemplateFuzz:
    @given(templates)
    @settings(max_examples=150, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_template_questions_translate_or_fail_cleanly(self, question):
        try:
            result = NL2CM_INSTANCE.translate(question)
        except ReproError:
            return
        # Contract: the output is always a valid, round-trippable query.
        reparsed = parse_oassisql(result.query_text)
        assert reparsed == result.query
        result.query.validate()

    @given(templates)
    @settings(max_examples=50, deadline=None)
    def test_translation_is_deterministic(self, question):
        def attempt():
            try:
                return NL2CM_INSTANCE.translate(question).query_text
            except ReproError as exc:
                return f"{type(exc).__name__}"

        assert attempt() == attempt()


class TestGarbageFuzz:
    @given(st.text(max_size=80))
    @settings(max_examples=100, deadline=None)
    def test_arbitrary_text_never_crashes_raw(self, text):
        try:
            result = NL2CM_INSTANCE.translate(text)
        except ReproError:
            return
        assert parse_oassisql(result.query_text) == result.query

    @given(st.lists(
        st.sampled_from(PLACES + THINGS + OPINIONS + VERBS + SUBJECTS
                        + ["the", "a", "?", ",", "and", "of", "in"]),
        min_size=1, max_size=12,
    ))
    @settings(max_examples=150, deadline=None)
    def test_word_salad_never_crashes(self, words):
        text = " ".join(words)
        try:
            result = NL2CM_INSTANCE.translate(text)
        except ReproError:
            return
        assert parse_oassisql(result.query_text) == result.query


class TestSeededFuzz:
    """A dependency-free seeded fuzzer: every failure names its seed.

    Complements the hypothesis suites above with a plain
    :class:`random.Random` generator (the same determinism idiom the
    resilience layer's fault plans use), so a red run reproduces from
    the printed seed alone — no shrinking database required.
    """

    N_SEEDS = 200
    VOCAB = (PLACES + THINGS + OPINIONS + VERBS + SUBJECTS
             + ["the", "a", "?", "and", "of", "in", "most", "best"])
    NOISE = "abcdefghijklmnopqrstuvwxyz ?!.,;:'$%0123456789\"\\\n\t"

    def generate(self, seed: int) -> str:
        rng = random.Random(seed)
        roll = rng.random()
        if roll < 0.4:
            words = [rng.choice(self.VOCAB)
                     for _ in range(rng.randint(1, 12))]
            return " ".join(words)
        if roll < 0.7:
            template = rng.choice([
                "What are the most {o} {t} in {p}?",
                "Where do {s} {v} in {p}?",
                "Which {t} should {s} {v}?",
                "Is {p} {o}?",
            ])
            return template.format(
                o=rng.choice(OPINIONS), t=rng.choice(THINGS),
                p=rng.choice(PLACES), s=rng.choice(SUBJECTS),
                v=rng.choice(VERBS),
            )
        return "".join(
            rng.choice(self.NOISE) for _ in range(rng.randint(0, 60))
        )

    def test_only_typed_errors_escape(self):
        for seed in range(self.N_SEEDS):
            text = self.generate(seed)
            try:
                result = NL2CM_INSTANCE.translate(text)
            except ReproError:
                continue
            except Exception as exc:  # pragma: no cover - the bug path
                pytest.fail(
                    f"seed {seed}: untyped {type(exc).__name__} escaped "
                    f"for input {text!r}: {exc}"
                )
            assert parse_oassisql(result.query_text) == result.query, (
                f"seed {seed}: printed query does not round-trip for "
                f"input {text!r}"
            )

