"""Tests for the embedded ontology snapshots and the Ontology service."""

import pytest

from repro.data.ontologies import (
    load_dbpedia,
    load_food,
    load_geo,
    load_merged_ontology,
)
from repro.rdf.ontology import KB, normalize_label


@pytest.fixture(scope="module")
def geo():
    return load_geo()


@pytest.fixture(scope="module")
def merged():
    return load_merged_ontology()


class TestSnapshots:
    def test_all_snapshots_load(self):
        assert len(load_geo()) > 100
        assert len(load_dbpedia()) > 60
        assert len(load_food()) > 60

    def test_merged_is_union(self, merged):
        assert len(merged) == (
            len(load_geo()) + len(load_dbpedia()) + len(load_food())
        )

    def test_running_example_entities_present(self, geo):
        hotel = KB["Forest_Hotel,_Buffalo,_NY"]
        assert geo.store.contains(hotel, KB.instanceOf, KB.Hotel)
        assert geo.store.contains(KB.Delaware_Park, KB.near, hotel)
        assert geo.store.contains(KB.Buffalo_Zoo, KB.near, hotel)

    def test_fall_entity_present(self):
        dbp = load_dbpedia()
        assert dbp.store.contains(KB.Fall, KB.instanceOf, KB.Season)


class TestCachedSnapshotsAreFrozen:
    """Regression: the loaders lru_cache one shared Ontology, so a
    mutation through any reference used to poison every later caller.
    The cached instances are now frozen; ``.copy()`` is the escape
    hatch for callers that really want to mutate."""

    def test_cached_snapshot_rejects_mutation(self, geo):
        from repro.errors import FrozenStoreError

        with pytest.raises(FrozenStoreError):
            geo.store.add(KB.X, KB.instanceOf, KB.Place)
        with pytest.raises(FrozenStoreError):
            geo.store.remove(KB.Delaware_Park, KB.near,
                             KB["Forest_Hotel,_Buffalo,_NY"])

    def test_merged_snapshot_is_frozen_too(self, merged):
        assert merged.store.frozen

    def test_copy_is_mutable_and_isolated(self, geo):
        before = len(geo)
        clone = geo.copy()
        assert not clone.store.frozen
        clone.store.add(KB.X, KB.instanceOf, KB.Place)
        assert len(geo) == before
        assert len(clone) == before + 1


class TestEntityLookup:
    def test_exact_label_match(self, geo):
        matches = geo.lookup("Delaware Park")
        assert matches[0].iri == KB.Delaware_Park
        assert matches[0].score == 1.0

    def test_alias_match_scores_lower(self, geo):
        matches = geo.lookup("Forest Hotel")
        assert matches[0].iri == KB["Forest_Hotel,_Buffalo,_NY"]
        assert matches[0].score == pytest.approx(0.9)

    def test_buffalo_is_ambiguous(self, geo):
        matches = geo.lookup("Buffalo")
        top_iris = {m.iri for m in matches if m.score >= 0.9}
        assert {KB["Buffalo,_NY"], KB["Buffalo,_IL"]} <= top_iris

    def test_case_insensitive(self, geo):
        assert geo.lookup("delaware park")[0].iri == KB.Delaware_Park

    def test_class_lookup(self, geo):
        matches = geo.lookup("places", kinds=("class",))
        assert matches[0].iri == KB.Place

    def test_property_lookup(self, geo):
        matches = geo.lookup("near", kinds=("property",))
        assert matches[0].iri == KB.near

    def test_partial_match_scores_below_alias(self, geo):
        matches = geo.lookup("Albright")
        entry = next(m for m in matches
                     if m.iri == KB.Albright_Knox_Art_Gallery)
        assert 0 < entry.score < 0.9

    def test_no_match(self, geo):
        assert geo.lookup("xyzzyplugh") == []

    def test_best_match_threshold(self, geo):
        assert geo.best_match("xyzzyplugh") is None
        match = geo.best_match("Buffalo Zoo")
        assert match is not None and match.iri == KB.Buffalo_Zoo

    def test_kinds_filter_excludes(self, geo):
        assert geo.lookup("Delaware Park", kinds=("property",)) == []


class TestSchemaViews:
    def test_classes(self, geo):
        assert KB.Place in geo.classes
        assert KB.Hotel in geo.classes

    def test_properties(self, geo):
        assert KB.near in geo.properties
        assert KB.instanceOf in geo.properties

    def test_label_of(self, geo):
        assert geo.label_of(KB.Delaware_Park) == "Delaware Park"

    def test_label_of_falls_back_to_local_name(self, geo):
        assert geo.label_of(KB.Unknown_Thing) == "Unknown Thing"

    def test_instances_of(self, geo):
        hotels = geo.instances_of(KB.Hotel)
        assert KB["Forest_Hotel,_Buffalo,_NY"] in hotels
        assert KB.Bellagio in hotels

    def test_types_of(self, geo):
        types = geo.types_of(KB.Delaware_Park)
        assert KB.Park in types and KB.Place in types

    def test_vocabulary_words(self, geo):
        words = geo.vocabulary_words()
        assert "buffalo" in words and "hotel" in words


class TestNormalizeLabel:
    @pytest.mark.parametrize("raw,expected", [
        ("Forest_Hotel", "forest hotel"),
        ("  Delaware   Park ", "delaware park"),
        ("Buffalo, NY", "buffalo, ny"),
        ("Albright-Knox", "albrightknox"),
        ("UPPER case", "upper case"),
    ])
    def test_normalization(self, raw, expected):
        assert normalize_label(raw) == expected
