"""Gold CoNLL corpus: parsing, rendering, validation error paths."""

import pytest

from repro.data.goldnlp import (
    GoldSentence,
    GoldToken,
    load_gold_conll,
    parse_gold_conll,
    render_gold_conll,
    sentence_from_graph,
)
from repro.errors import GoldCorpusError, ReproError
from repro.nlp import parse

SAMPLE = """\
# id = travel-01
# text = Where do you visit in Buffalo?
1\tWhere\tWRB\t4\tadvmod
2\tdo\tVBP\t4\taux
3\tyou\tPRP\t4\tnsubj
4\tvisit\tVB\t0\troot
5\tin\tIN\t4\tprep
6\tBuffalo\tNNP\t5\tpobj
7\t?\t.\t4\tpunct

# id = travel-02
# text = Where do we go?
1\tWhere\tWRB\t4\tadvmod
2\tdo\tVBP\t4\taux
3\twe\tPRP\t4\tnsubj
4\tgo\tVB\t0\troot
5\t?\t.\t4\tpunct
"""


class TestParsing:
    def test_parses_sentences_and_metadata(self):
        sentences = parse_gold_conll(SAMPLE)
        assert len(sentences) == 2
        first = sentences[0]
        assert first.id == "travel-01"
        assert first.text == "Where do you visit in Buffalo?"
        assert first.forms() == (
            "Where", "do", "you", "visit", "in", "Buffalo", "?",
        )
        assert first.tags() == (
            "WRB", "VBP", "PRP", "VB", "IN", "NNP", ".",
        )
        assert first.tokens[3] == GoldToken("visit", "VB", 0, "root")

    def test_text_defaults_to_joined_forms(self):
        block = "1\tHello\tUH\t0\troot\n"
        (sentence,) = parse_gold_conll(block)
        assert sentence.text == "Hello"
        assert sentence.id == ""

    def test_empty_source_yields_no_sentences(self):
        assert parse_gold_conll("") == ()
        assert parse_gold_conll("# text = nothing\n\n") == ()


class TestRoundTrip:
    def test_parse_render_is_a_fixpoint(self):
        sentences = parse_gold_conll(SAMPLE)
        rendered = render_gold_conll(sentences)
        assert rendered == SAMPLE
        assert parse_gold_conll(rendered) == sentences

    def test_render_empty_is_empty(self):
        assert render_gold_conll([]) == ""

    def test_sentence_from_graph_round_trips_through_format(self):
        graph = parse("Where do you visit in Buffalo?")
        sentence = sentence_from_graph(graph, id="demo-01")
        rendered = render_gold_conll([sentence])
        assert parse_gold_conll(rendered) == (sentence,)
        # The silver sentence is valid gold: one root, aligned forms.
        assert sentence.forms() == tuple(
            n.text for n in graph.nodes()
        )
        assert sum(t.head == 0 for t in sentence.tokens) == 1


def _expect_error(source, message, line):
    with pytest.raises(GoldCorpusError, match=message) as exc:
        parse_gold_conll(source, path="gold.conll")
    assert f"gold.conll:{line}" in str(exc.value)


class TestValidation:
    def test_error_type_is_a_repro_error(self):
        assert issubclass(GoldCorpusError, ReproError)

    def test_wrong_column_count(self):
        _expect_error("1\tHello\tUH\t0\n", "expected 5", 1)

    def test_non_numeric_index(self):
        _expect_error("x\tHello\tUH\t0\troot\n", "non-numeric", 1)

    def test_out_of_order_index(self):
        _expect_error(
            "2\tHello\tUH\t0\troot\n", "out of order", 1
        )

    def test_empty_form(self):
        _expect_error("1\t\tUH\t0\troot\n", "empty token form", 1)

    def test_unknown_tag(self):
        _expect_error("1\tHello\tZZ\t0\troot\n", "unknown POS tag", 1)

    def test_unknown_label(self):
        _expect_error(
            "1\tHello\tUH\t0\tzzz\n", "unknown dependency label", 1
        )

    def test_head_out_of_range(self):
        _expect_error(
            "1\tHello\tUH\t5\tdep\n", "out of range", 1
        )

    def test_token_cannot_head_itself(self):
        _expect_error(
            "1\tHello\tUH\t1\tdep\n", "its own head", 1
        )

    def test_root_requires_root_label(self):
        _expect_error(
            "1\tHello\tUH\t0\tdep\n", "requires label 'root'", 1
        )

    def test_exactly_one_root_required(self):
        two_roots = (
            "1\tHello\tUH\t0\troot\n"
            "2\tthere\tRB\t0\troot\n"
        )
        _expect_error(two_roots, "exactly one root", 2)
        no_root = (
            "1\tHello\tUH\t2\tdep\n"
            "2\tthere\tRB\t1\tdep\n"
        )
        _expect_error(no_root, "exactly one root", 2)

    def test_line_numbers_count_comments_and_blanks(self):
        source = (
            "# id = x\n"
            "\n"
            "1\tHello\tZZ\t0\troot\n"
        )
        _expect_error(source, "unknown POS tag", 3)

    def test_errors_without_a_path_still_name_the_line(self):
        with pytest.raises(GoldCorpusError, match="line 1"):
            parse_gold_conll("1\tHello\tZZ\t0\troot\n")


class TestLoading:
    def test_load_parses_a_file(self, tmp_path):
        path = tmp_path / "gold_nlp.conll"
        path.write_text(SAMPLE, "utf-8")
        sentences = load_gold_conll(path)
        assert [s.id for s in sentences] == ["travel-01", "travel-02"]

    def test_missing_file_names_the_path(self, tmp_path):
        missing = tmp_path / "nope.conll"
        with pytest.raises(GoldCorpusError, match="unreadable") as exc:
            load_gold_conll(missing)
        assert str(missing) in str(exc.value)

    def test_malformed_file_names_path_and_line(self, tmp_path):
        path = tmp_path / "bad.conll"
        path.write_text("1\tHello\tZZ\t0\troot\n", "utf-8")
        with pytest.raises(GoldCorpusError) as exc:
            load_gold_conll(path)
        assert f"{path}:1" in str(exc.value)
