"""Tests for the IX-detection vocabularies."""

import pytest

from repro.data.vocabularies import Vocabulary, load_vocabularies


@pytest.fixture(scope="module")
def registry():
    return load_vocabularies()


class TestStandardVocabularies:
    def test_all_standard_names_present(self, registry):
        for name in ("V_opinion", "V_positive", "V_negative",
                     "V_participant", "V_modal", "V_habit"):
            assert name in registry

    def test_opinion_contains_interesting(self, registry):
        # "interesting" is the paper's example of lexical individuality.
        assert "interesting" in registry["V_opinion"]
        assert "interesting" in registry["V_positive"]

    def test_opinion_union_of_polarities(self, registry):
        opinion = registry["V_opinion"]
        assert len(opinion) == (
            len(registry["V_positive"]) + len(registry["V_negative"])
        )

    def test_negative_words(self, registry):
        for word in ("boring", "overpriced", "dirty"):
            assert word in registry["V_negative"]

    def test_participants(self, registry):
        # "you" and "we" are the paper's participant examples.
        for word in ("you", "we", "i", "people"):
            assert word in registry["V_participant"]

    def test_modals(self, registry):
        # "should" is the paper's syntactic-individuality example.
        assert "should" in registry["V_modal"]
        assert "must" in registry["V_modal"]

    def test_habit_verbs(self, registry):
        for word in ("visit", "eat", "cook"):
            assert word in registry["V_habit"]

    def test_non_individual_words_absent(self, registry):
        for word in ("place", "hotel", "camera"):
            assert word not in registry["V_opinion"]
            assert word not in registry["V_participant"]

    def test_vocabularies_are_nonempty(self, registry):
        for name in registry.names():
            assert len(registry[name]) > 0


class TestVocabularyBehaviour:
    def test_case_insensitive_membership(self):
        vocab = Vocabulary("V_test", ["Good", "bad"])
        assert "good" in vocab
        assert "GOOD" in vocab
        assert "BAD" in vocab

    def test_iteration_sorted(self):
        vocab = Vocabulary("V_test", ["b", "a", "c"])
        assert list(vocab) == ["a", "b", "c"]

    def test_blank_entries_dropped(self):
        vocab = Vocabulary("V_test", ["a", "  ", ""])
        assert len(vocab) == 1

    def test_union(self):
        u = Vocabulary("a", ["x"]).union(Vocabulary("b", ["y"]), "u")
        assert "x" in u and "y" in u and u.name == "u"

    def test_registry_unknown_name(self):
        registry = load_vocabularies()
        with pytest.raises(KeyError) as err:
            registry["V_nope"]
        assert "V_nope" in str(err.value)

    def test_registry_custom_registration(self):
        registry = load_vocabularies()
        registry.register(Vocabulary("V_custom", ["zorp"]))
        assert "zorp" in registry["V_custom"]
