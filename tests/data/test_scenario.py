"""Scenario packs: the default bundle and the directory loader."""

import json

import pytest

from repro.data.corpus import CORPUS
from repro.data.scenario import default_pack, load_pack
from repro.errors import ScenarioPackError

ONTOLOGY_TTL = """\
@prefix kb: <http://repro.example/kb/> .
@prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
kb:Place rdfs:label "place" .
kb:Buffalo kb:instanceOf kb:Place ;
    rdfs:label "buffalo" .
"""

PATTERNS = """\
PATTERN opinion TYPE lexical ANCHOR $x
filter(LEMMA($x) in V_opinion)
"""


@pytest.fixture
def pack_dir(tmp_path):
    root = tmp_path / "mypack"
    root.mkdir()
    (root / "base.ttl").write_text(ONTOLOGY_TTL)
    (root / "patterns.txt").write_text(PATTERNS)
    vocab_dir = root / "vocabularies"
    vocab_dir.mkdir()
    (vocab_dir / "V_opinion.txt").write_text("like\nlove\n# note\n")
    (root / "corpus.json").write_text(json.dumps([
        {"id": "q1", "text": "Where do you visit in Buffalo?",
         "domain": "travel",
         "gold_general_entities": ["Place", "Buffalo"]},
    ]))
    return root


class TestDefaultPack:
    def test_bundles_the_embedded_artifacts(self):
        pack = default_pack()
        assert pack.name == "default"
        assert len(pack.ontology) > 0
        assert "V_opinion" in pack.vocabularies
        assert pack.patterns
        assert pack.corpus == CORPUS

    def test_ontology_is_the_frozen_shared_snapshot(self):
        assert default_pack().ontology.store.frozen


class TestLoadPack:
    def test_loads_every_artifact(self, pack_dir):
        pack = load_pack(pack_dir)
        assert pack.name == "mypack"
        assert len(pack.ontology) == 3
        assert list(pack.vocabularies["V_opinion"]) == ["like", "love"]
        assert [p.name for p in pack.patterns] == ["opinion"]
        assert pack.corpus[0].id == "q1"
        assert pack.corpus[0].gold_general_entities == (
            "Place", "Buffalo",
        )

    def test_merges_multiple_snapshots(self, pack_dir):
        (pack_dir / "extra.ttl").write_text(
            "@prefix kb: <http://repro.example/kb/> .\n"
            "@prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .\n"
            'kb:Park rdfs:label "park" .\n'
        )
        pack = load_pack(pack_dir)
        assert len(pack.ontology) == 4

    def test_corpus_and_vocabularies_are_optional(self, pack_dir):
        (pack_dir / "corpus.json").unlink()
        for path in (pack_dir / "vocabularies").iterdir():
            path.unlink()
        (pack_dir / "vocabularies").rmdir()
        pack = load_pack(pack_dir)
        assert pack.corpus == ()
        assert pack.vocabularies.names() == []

    def test_missing_directory(self, tmp_path):
        with pytest.raises(ScenarioPackError, match="not a pack"):
            load_pack(tmp_path / "nope")

    def test_missing_ontology(self, pack_dir):
        (pack_dir / "base.ttl").unlink()
        with pytest.raises(ScenarioPackError, match=r"no \*\.ttl"):
            load_pack(pack_dir)

    def test_missing_patterns(self, pack_dir):
        (pack_dir / "patterns.txt").unlink()
        with pytest.raises(ScenarioPackError, match="patterns.txt"):
            load_pack(pack_dir)

    def test_broken_ontology(self, pack_dir):
        (pack_dir / "base.ttl").write_text("kb:A broken")
        with pytest.raises(ScenarioPackError, match="cannot load"):
            load_pack(pack_dir)

    def test_corpus_must_be_a_list(self, pack_dir):
        (pack_dir / "corpus.json").write_text('{"id": "q1"}')
        with pytest.raises(ScenarioPackError, match="JSON list"):
            load_pack(pack_dir)

    def test_corpus_unknown_field(self, pack_dir):
        (pack_dir / "corpus.json").write_text(json.dumps([
            {"id": "q1", "text": "t", "domain": "d", "speed": 9},
        ]))
        with pytest.raises(ScenarioPackError, match="unknown fields"):
            load_pack(pack_dir)

    def test_corpus_missing_required_field(self, pack_dir):
        (pack_dir / "corpus.json").write_text(json.dumps([
            {"id": "q1", "text": "t"},
        ]))
        with pytest.raises(ScenarioPackError, match="missing"):
            load_pack(pack_dir)

    def test_corpus_unparsable_json(self, pack_dir):
        (pack_dir / "corpus.json").write_text("{nope")
        with pytest.raises(ScenarioPackError, match="unreadable"):
            load_pack(pack_dir)
