"""Scenario packs: the default bundle and the directory loader."""

import json

import pytest

from repro.data.corpus import CORPUS
from repro.data.scenario import default_pack, load_pack
from repro.errors import ScenarioPackError

ONTOLOGY_TTL = """\
@prefix kb: <http://repro.example/kb/> .
@prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
kb:Place rdfs:label "place" .
kb:Buffalo kb:instanceOf kb:Place ;
    rdfs:label "buffalo" .
"""

PATTERNS = """\
PATTERN opinion TYPE lexical ANCHOR $x
filter(LEMMA($x) in V_opinion)
"""


@pytest.fixture
def pack_dir(tmp_path):
    root = tmp_path / "mypack"
    root.mkdir()
    (root / "base.ttl").write_text(ONTOLOGY_TTL)
    (root / "patterns.txt").write_text(PATTERNS)
    vocab_dir = root / "vocabularies"
    vocab_dir.mkdir()
    (vocab_dir / "V_opinion.txt").write_text("like\nlove\n# note\n")
    (root / "corpus.json").write_text(json.dumps([
        {"id": "q1", "text": "Where do you visit in Buffalo?",
         "domain": "travel",
         "gold_general_entities": ["Place", "Buffalo"]},
    ]))
    return root


class TestDefaultPack:
    def test_bundles_the_embedded_artifacts(self):
        pack = default_pack()
        assert pack.name == "default"
        assert len(pack.ontology) > 0
        assert "V_opinion" in pack.vocabularies
        assert pack.patterns
        assert pack.corpus == CORPUS

    def test_ontology_is_the_frozen_shared_snapshot(self):
        assert default_pack().ontology.store.frozen


class TestLoadPack:
    def test_loads_every_artifact(self, pack_dir):
        pack = load_pack(pack_dir)
        assert pack.name == "mypack"
        assert len(pack.ontology) == 3
        assert list(pack.vocabularies["V_opinion"]) == ["like", "love"]
        assert [p.name for p in pack.patterns] == ["opinion"]
        assert pack.corpus[0].id == "q1"
        assert pack.corpus[0].gold_general_entities == (
            "Place", "Buffalo",
        )

    def test_merges_multiple_snapshots(self, pack_dir):
        (pack_dir / "extra.ttl").write_text(
            "@prefix kb: <http://repro.example/kb/> .\n"
            "@prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .\n"
            'kb:Park rdfs:label "park" .\n'
        )
        pack = load_pack(pack_dir)
        assert len(pack.ontology) == 4

    def test_vocabularies_directory_is_optional(self, pack_dir):
        for path in (pack_dir / "vocabularies").iterdir():
            path.unlink()
        (pack_dir / "vocabularies").rmdir()
        pack = load_pack(pack_dir)
        assert pack.vocabularies.names() == []

    def test_missing_corpus_is_an_error(self, pack_dir):
        (pack_dir / "corpus.json").unlink()
        with pytest.raises(ScenarioPackError, match="corpus.json") as exc:
            load_pack(pack_dir)
        assert str(pack_dir) in str(exc.value)

    def test_empty_vocabulary_file_is_an_error(self, pack_dir):
        empty = pack_dir / "vocabularies" / "V_empty.txt"
        empty.write_text("# only a comment\n")
        with pytest.raises(ScenarioPackError, match="V_empty") as exc:
            load_pack(pack_dir)
        assert "empty" in str(exc.value)

    def test_missing_directory(self, tmp_path):
        with pytest.raises(ScenarioPackError, match="not a pack"):
            load_pack(tmp_path / "nope")

    def test_missing_ontology(self, pack_dir):
        (pack_dir / "base.ttl").unlink()
        with pytest.raises(ScenarioPackError, match=r"no \*\.ttl"):
            load_pack(pack_dir)

    def test_missing_patterns(self, pack_dir):
        (pack_dir / "patterns.txt").unlink()
        with pytest.raises(ScenarioPackError, match="patterns.txt"):
            load_pack(pack_dir)

    def test_broken_ontology(self, pack_dir):
        (pack_dir / "base.ttl").write_text("kb:A broken")
        with pytest.raises(ScenarioPackError, match="cannot load"):
            load_pack(pack_dir)

    def test_corpus_must_be_a_list(self, pack_dir):
        (pack_dir / "corpus.json").write_text('{"id": "q1"}')
        with pytest.raises(ScenarioPackError, match="JSON list"):
            load_pack(pack_dir)

    def test_corpus_unknown_field(self, pack_dir):
        (pack_dir / "corpus.json").write_text(json.dumps([
            {"id": "q1", "text": "t", "domain": "d", "speed": 9},
        ]))
        with pytest.raises(ScenarioPackError, match="unknown fields"):
            load_pack(pack_dir)

    def test_corpus_missing_required_field(self, pack_dir):
        (pack_dir / "corpus.json").write_text(json.dumps([
            {"id": "q1", "text": "t"},
        ]))
        with pytest.raises(ScenarioPackError, match="missing"):
            load_pack(pack_dir)

    def test_corpus_unparsable_json(self, pack_dir):
        (pack_dir / "corpus.json").write_text("{nope")
        with pytest.raises(ScenarioPackError, match="unreadable"):
            load_pack(pack_dir)

    def test_corpus_duplicate_question_ids(self, pack_dir):
        (pack_dir / "corpus.json").write_text(json.dumps([
            {"id": "q1", "text": "a?", "domain": "d"},
            {"id": "q1", "text": "b?", "domain": "d"},
        ]))
        with pytest.raises(ScenarioPackError, match="duplicates") as exc:
            load_pack(pack_dir)
        assert "corpus.json" in str(exc.value)
        assert "q1" in str(exc.value)

    def test_malformed_ttl_names_the_file(self, pack_dir):
        bad = pack_dir / "extra.ttl"
        bad.write_text("kb:A broken turtle")
        with pytest.raises(ScenarioPackError, match="cannot load") as exc:
            load_pack(pack_dir)
        assert str(bad) in str(exc.value)

    def test_malformed_gold_annotations_name_the_file(self, pack_dir):
        gold = pack_dir / "gold_nlp.conll"
        gold.write_text("1\tHello\tZZ\t0\troot\n")
        with pytest.raises(ScenarioPackError, match="gold") as exc:
            load_pack(pack_dir)
        assert str(gold) in str(exc.value)
