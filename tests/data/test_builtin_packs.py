"""The builtin scenario packs: loading, lint cleanliness, gold hygiene.

These are data tests: every pack that ships inside the package must
load, pass the full lint stack without errors, and carry gold
annotations that align with the tokenizer — otherwise the accuracy
harness silently skips sentences.
"""

import pytest

from repro.analysis.runner import lint_scenario_pack
from repro.data.scenario import (
    DOMAIN_PACKS,
    builtin_pack_names,
    builtin_packs_dir,
    domain_pack,
    load_builtin_packs,
    load_pack,
)
from repro.errors import ScenarioPackError
from repro.nlp.tokenizer import tokenize

PACKAGED = ("commerce", "movies", "patients")


@pytest.fixture(scope="module")
def packs():
    return load_builtin_packs()


class TestInventory:
    def test_names_cover_domains_and_packaged_dirs(self):
        assert builtin_pack_names() == DOMAIN_PACKS + PACKAGED

    def test_load_builtin_packs_matches_the_names(self, packs):
        assert tuple(p.name for p in packs) == builtin_pack_names()

    def test_every_pack_is_self_contained(self, packs):
        for pack in packs:
            assert len(pack.ontology) > 0, pack.name
            assert pack.patterns, pack.name
            assert pack.corpus, pack.name
            assert pack.gold_nlp, pack.name
            assert pack.vocabularies.names(), pack.name

    def test_domain_pack_rejects_unknown_domain(self):
        with pytest.raises(ScenarioPackError, match="no corpus"):
            domain_pack("astronomy")


class TestPackagedPacks:
    @pytest.mark.parametrize("name", PACKAGED)
    def test_loads_from_its_directory(self, name):
        pack = load_pack(builtin_packs_dir() / name)
        assert pack.name == name

    @pytest.mark.parametrize("name", PACKAGED)
    def test_lints_clean(self, name):
        pack = load_pack(builtin_packs_dir() / name)
        outcome = lint_scenario_pack(pack)
        diagnostics = [
            (d.rule, d.message)
            for report in outcome.reports
            for d in report.diagnostics
        ]
        assert not diagnostics, diagnostics

    @pytest.mark.parametrize("name", PACKAGED)
    def test_has_a_supported_and_an_unsupported_question(self, name):
        pack = load_pack(builtin_packs_dir() / name)
        supported = [q for q in pack.corpus if q.supported]
        rejected = [q for q in pack.corpus if not q.supported]
        assert len(supported) >= 4
        assert rejected and all(q.reject_reason for q in rejected)

    @pytest.mark.parametrize("name", PACKAGED)
    def test_supported_questions_carry_gold_queries(self, name):
        pack = load_pack(builtin_packs_dir() / name)
        for question in pack.corpus:
            if question.supported:
                assert question.gold_query, question.id


class TestGoldHygiene:
    def test_gold_forms_align_with_the_tokenizer(self, packs):
        for pack in packs:
            for sentence in pack.gold_nlp:
                tokens = tuple(
                    t.text for t in tokenize(sentence.text)
                )
                assert tokens == sentence.forms(), (
                    pack.name, sentence.id,
                )

    def test_gold_ids_match_corpus_ids(self, packs):
        for pack in packs:
            corpus_ids = {q.id for q in pack.corpus}
            for sentence in pack.gold_nlp:
                assert sentence.id in corpus_ids, (
                    pack.name, sentence.id,
                )

    def test_gold_ids_are_unique_within_a_pack(self, packs):
        for pack in packs:
            ids = [s.id for s in pack.gold_nlp]
            assert len(ids) == len(set(ids)), pack.name

    def test_every_corpus_question_has_gold_annotations(self, packs):
        for pack in packs:
            if pack.name in PACKAGED:
                gold_ids = {s.id for s in pack.gold_nlp}
                for question in pack.corpus:
                    assert question.id in gold_ids, (
                        pack.name, question.id,
                    )
