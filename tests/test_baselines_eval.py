"""Tests for the baselines (B1-B3) and the evaluation harness."""

import pytest

from repro.baselines import (
    GeneralOnlyTranslator,
    KBMismatchDetector,
    SentimentOnlyDetector,
)
from repro.baselines.ix_baselines import full_detector_anchors
from repro.data.corpus import (
    CORPUS,
    supported_questions,
    unsupported_questions,
)
from repro.errors import CompositionError, VerificationError
from repro.eval.harness import (
    evaluate_interaction,
    evaluate_ix_anchors,
    evaluate_translation_quality,
    evaluate_verification,
    format_table,
)
from repro.eval.metrics import (
    PrecisionRecall,
    query_structure_score,
    set_precision_recall,
)
from repro.nlp import parse
from repro.oassisql import parse_oassisql


class TestCorpusIntegrity:
    def test_corpus_size(self):
        assert len(CORPUS) >= 40
        assert len(supported_questions()) >= 30
        assert len(unsupported_questions()) >= 6

    def test_paper_questions_present(self):
        from_paper = [q for q in CORPUS if q.from_paper]
        assert len(from_paper) >= 7

    def test_ids_unique(self):
        ids = [q.id for q in CORPUS]
        assert len(ids) == len(set(ids))

    def test_gold_queries_are_valid_oassisql(self):
        for q in CORPUS:
            if q.gold_query:
                parse_oassisql(q.gold_query)

    def test_every_domain_covered(self):
        domains = {q.domain for q in CORPUS}
        assert {"travel", "shopping", "health", "food"} <= domains

    def test_unsupported_have_reasons(self):
        for q in unsupported_questions():
            assert q.reject_reason


class TestMetrics:
    def test_set_precision_recall(self):
        pr = set_precision_recall({"a", "b", "x"}, {"a", "b", "c"})
        assert pr.true_positives == 2
        assert pr.false_positives == 1
        assert pr.false_negatives == 1
        assert pr.precision == pytest.approx(2 / 3)
        assert pr.recall == pytest.approx(2 / 3)

    def test_empty_sets_are_perfect(self):
        pr = set_precision_recall(set(), set())
        assert pr.precision == 1.0 and pr.recall == 1.0

    def test_f1_zero_when_nothing_right(self):
        pr = set_precision_recall({"x"}, {"y"})
        assert pr.f1 == 0.0

    def test_addition_aggregates(self):
        a = PrecisionRecall(1, 2, 3)
        b = PrecisionRecall(4, 5, 6)
        assert a + b == PrecisionRecall(5, 7, 9)

    def test_structure_score_identical_queries(self):
        q = parse_oassisql(
            "SELECT VARIABLES\nWHERE\n{$x instanceOf Place}\n"
            "SATISFYING\n{[] visit $x}\nWITH SUPPORT THRESHOLD = 0.1"
        )
        assert query_structure_score(q, q) == 1.0

    def test_structure_score_variable_renaming_invariant(self):
        a = parse_oassisql(
            "SELECT VARIABLES\nWHERE\n{$x instanceOf Place}"
        )
        b = parse_oassisql(
            "SELECT VARIABLES\nWHERE\n{$zz instanceOf Place}"
        )
        assert query_structure_score(a, b) == 1.0

    def test_structure_score_detects_difference(self):
        a = parse_oassisql(
            "SELECT VARIABLES\nWHERE\n{$x instanceOf Place}"
        )
        b = parse_oassisql(
            "SELECT VARIABLES\nWHERE\n{$x instanceOf Hotel}"
        )
        assert query_structure_score(a, b) < 1.0

    def test_format_table_alignment(self):
        table = format_table(["a", "bb"], [["1", "2"], ["333", "4"]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert all(len(l) == len(lines[0]) for l in lines[1:])


class TestGeneralOnlyBaseline:
    def test_translates_general_parts(self):
        baseline = GeneralOnlyTranslator()
        result = baseline.translate(
            "Which hotel in Vegas has the best thrill ride?"
        )
        assert result.query.satisfying == ()
        assert len(result.query.where) >= 2

    def test_habit_only_question_fails(self):
        baseline = GeneralOnlyTranslator()
        with pytest.raises(CompositionError):
            baseline.translate("Do you like sushi?")

    def test_verification_still_applies(self):
        baseline = GeneralOnlyTranslator()
        with pytest.raises(VerificationError):
            baseline.translate("How should I store coffee?")


class TestIXBaselines:
    def test_sentiment_only_finds_opinions(self):
        detector = SentimentOnlyDetector()
        graph = parse("What are the most interesting places?")
        assert detector.detect_anchors(graph) == {"interesting"}

    def test_sentiment_only_misses_habits(self):
        detector = SentimentOnlyDetector()
        graph = parse("the places we should visit in the fall")
        assert "visit" not in detector.detect_anchors(graph)

    def test_kb_mismatch_flags_unknown_words(self):
        detector = KBMismatchDetector()
        graph = parse("Where can we find a zorblatt?")
        assert "zorblatt" in detector.detect_anchors(graph)

    def test_kb_mismatch_misses_kb_covered_individual_words(self):
        # "fall" is in the KB (the season entity), so the naive
        # detector wrongly treats it as general.
        detector = KBMismatchDetector()
        graph = parse("the places we should visit in the fall")
        assert "fall" not in detector.detect_anchors(graph)


class TestHarness:
    def test_translation_quality_headline(self):
        report = evaluate_translation_quality()
        assert report.overall.ix.f1 >= 0.95
        assert report.overall.wellformed == report.overall.questions
        assert report.overall.exact_rate == 1.0
        assert not report.failures

    def test_nl2cm_beats_baselines_on_ix(self):
        ours = evaluate_ix_anchors(full_detector_anchors)
        sentiment = evaluate_ix_anchors(
            SentimentOnlyDetector().detect_anchors
        )
        mismatch = evaluate_ix_anchors(
            KBMismatchDetector().detect_anchors
        )
        assert ours.f1 > sentiment.f1
        assert ours.f1 > mismatch.f1
        # The characteristic failure modes:
        assert sentiment.recall < 0.6      # misses habits
        assert mismatch.precision < 0.6    # floods false positives

    def test_verification_report(self):
        report = evaluate_verification()
        assert report.accuracy == 1.0
        assert report.reason_correct == report.reject_total
        assert report.tips_covered == report.reject_total

    def test_interaction_report(self):
        report = evaluate_interaction()
        assert report.questions_with_any >= 1
        assert (report.disambiguations_second_pass
                <= report.disambiguations_first_pass)
        assert "ThresholdRequest" in report.counts_by_type

    def test_reports_format(self):
        for report in (evaluate_translation_quality(),
                       evaluate_verification()):
            text = report.format()
            assert "\n" in text
