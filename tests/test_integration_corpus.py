"""Full-corpus integration: translate and execute every question.

The strongest end-to-end statement the repository makes: every supported
corpus question goes NL -> OASSIS-QL -> crowd execution without errors,
and every query round-trips through the OASSIS-QL parser.
"""

import pytest

from repro import EngineConfig, NL2CM, OassisEngine, SimulatedCrowd
from repro.crowd.model import GroundTruth
from repro.crowd.scenarios import (
    buffalo_travel_truth,
    dietician_truth,
    vegas_rides_truth,
)
from repro.data.corpus import supported_questions
from repro.data.ontologies import load_merged_ontology
from repro.errors import VerificationError
from repro.oassisql import parse_oassisql


@pytest.fixture(scope="module")
def ontology():
    return load_merged_ontology()


@pytest.fixture(scope="module")
def nl2cm(ontology):
    return NL2CM(ontology=ontology)


@pytest.fixture(scope="module")
def engine(ontology):
    # A world that merges all demo scenarios plus a generous default,
    # so that every corpus question has something to mine.
    truth = GroundTruth(default=0.15)
    for scenario in (buffalo_travel_truth(), vegas_rides_truth(),
                     dietician_truth()):
        truth.supports.update(scenario.supports)
    crowd = SimulatedCrowd(truth, size=60, noise=0.05, seed=13)
    return OassisEngine(
        ontology, crowd, EngineConfig(min_sample=4, max_sample=12,
                                      topk_sample=8)
    )


@pytest.mark.parametrize(
    "question",
    supported_questions(),
    ids=lambda q: q.id,
)
class TestEveryQuestionEndToEnd:
    def test_translates_and_round_trips(self, nl2cm, question):
        result = nl2cm.translate(question.text)
        assert parse_oassisql(result.query_text) == result.query
        # Gold anchors are all found (surface match).
        predicted = {ix.anchor.lower for ix in result.ixs}
        for anchor in question.gold_ix_anchors:
            assert anchor.lower() in predicted, (question.id, anchor)

    def test_executes_with_the_crowd(self, nl2cm, engine, question):
        result = nl2cm.translate(question.text)
        execution = engine.evaluate(result.query)
        # Execution always terminates with a well-defined outcome set;
        # questions whose WHERE selects nothing legitimately return
        # empty results.
        assert execution.where_bindings >= 0
        for outcome in execution.accepted:
            assert outcome.supports
