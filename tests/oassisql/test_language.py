"""Tests for the OASSIS-QL AST, parser and printer.

The central fixture is the paper's Figure 1 query Q; the printer must
reproduce it byte-for-byte and the parser must round-trip it.
"""

import pytest
from hypothesis import given, strategies as st

from repro.errors import OassisQLSyntaxError, OassisQLValidationError
from repro.oassisql import (
    ANYTHING,
    OassisQuery,
    QueryTriple,
    SatisfyingClause,
    SelectClause,
    SupportThreshold,
    TopK,
    parse_oassisql,
    print_oassisql,
)
from repro.rdf.ontology import KB
from repro.rdf.terms import Literal, Variable


FIGURE1 = """\
SELECT VARIABLES
WHERE
{$x instanceOf Place.
$x near Forest_Hotel,_Buffalo,_NY}
SATISFYING
{$x hasLabel "interesting"}
ORDER BY DESC(SUPPORT)
LIMIT 5
AND
{[] visit $x.
[] in Fall}
WITH SUPPORT THRESHOLD = 0.1"""


def figure1_query() -> OassisQuery:
    x = Variable("x")
    return OassisQuery(
        select=SelectClause(),
        where=(
            QueryTriple(x, KB.instanceOf, KB.Place),
            QueryTriple(x, KB.near, KB["Forest_Hotel,_Buffalo,_NY"]),
        ),
        satisfying=(
            SatisfyingClause(
                triples=(QueryTriple(x, KB.hasLabel, Literal("interesting")),),
                qualifier=TopK(k=5),
            ),
            SatisfyingClause(
                triples=(
                    QueryTriple(ANYTHING, KB.visit, x),
                    QueryTriple(ANYTHING, KB["in"], KB.Fall),
                ),
                qualifier=SupportThreshold(threshold=0.1),
            ),
        ),
    )


class TestFigure1:
    def test_printer_reproduces_figure1_exactly(self):
        assert print_oassisql(figure1_query()) == FIGURE1

    def test_parser_reads_figure1(self):
        query = parse_oassisql(FIGURE1)
        assert query == figure1_query()

    def test_round_trip(self):
        query = parse_oassisql(FIGURE1)
        assert parse_oassisql(print_oassisql(query)) == query


class TestAst:
    def test_triple_variables(self):
        t = QueryTriple(Variable("x"), KB.near, Variable("y"))
        assert t.variables() == {"x", "y"}

    def test_anything_is_singleton(self):
        from repro.oassisql.ast import Anything
        assert Anything() is ANYTHING

    def test_has_anything(self):
        assert QueryTriple(ANYTHING, KB.visit, Variable("x")).has_anything()
        assert not QueryTriple(Variable("x"), KB.visit, KB.Fall
                               ).has_anything()

    def test_query_variable_sets(self):
        q = figure1_query()
        assert q.where_variables() == {"x"}
        assert q.satisfying_variables() == {"x"}
        assert q.all_variables() == {"x"}

    def test_select_projects_all_by_default(self):
        assert SelectClause().projects_all
        assert not SelectClause(variables=("x",)).projects_all


class TestValidation:
    def test_empty_query_rejected(self):
        with pytest.raises(OassisQLValidationError):
            OassisQuery(SelectClause(), (), ()).validate()

    def test_zero_limit_rejected(self):
        clause = SatisfyingClause(
            triples=(QueryTriple(ANYTHING, KB.visit, Variable("x")),),
            qualifier=TopK(k=0),
        )
        with pytest.raises(OassisQLValidationError):
            clause.validate()

    def test_threshold_out_of_range_rejected(self):
        clause = SatisfyingClause(
            triples=(QueryTriple(ANYTHING, KB.visit, Variable("x")),),
            qualifier=SupportThreshold(threshold=1.5),
        )
        with pytest.raises(OassisQLValidationError):
            clause.validate()

    def test_unknown_projection_rejected(self):
        q = OassisQuery(
            select=SelectClause(variables=("zzz",)),
            where=(QueryTriple(Variable("x"), KB.instanceOf, KB.Place),),
            satisfying=(),
        )
        with pytest.raises(OassisQLValidationError):
            q.validate()

    def test_empty_subclause_rejected(self):
        clause = SatisfyingClause(triples=(), qualifier=TopK(k=5))
        with pytest.raises(OassisQLValidationError):
            clause.validate()


class TestParserDetails:
    def test_projection_select(self):
        q = parse_oassisql(
            "SELECT $x, $y\nWHERE\n{$x near $y}"
        )
        assert q.select.variables == ("x", "y")

    def test_where_only_query(self):
        q = parse_oassisql("SELECT VARIABLES\nWHERE\n{$x instanceOf Place}")
        assert q.satisfying == ()

    def test_satisfying_only_query(self):
        q = parse_oassisql(
            "SELECT VARIABLES\nSATISFYING\n{[] visit $x}\n"
            "WITH SUPPORT THRESHOLD = 0.2"
        )
        assert q.where == ()
        assert q.satisfying[0].qualifier == SupportThreshold(0.2)

    def test_bottom_k(self):
        q = parse_oassisql(
            "SELECT VARIABLES\nSATISFYING\n{[] visit $x}\n"
            "ORDER BY ASC(SUPPORT)\nLIMIT 3"
        )
        assert q.satisfying[0].qualifier == TopK(k=3, descending=False)

    def test_numbers_as_literals(self):
        q = parse_oassisql(
            "SELECT VARIABLES\nWHERE\n{$x ticketPrice 16}"
        )
        assert q.where[0].o == Literal(16)

    def test_comment_lines_skipped(self):
        q = parse_oassisql(
            "# the demo query\nSELECT VARIABLES\nWHERE\n{$x near Fall}"
        )
        assert len(q.where) == 1

    def test_error_has_line_number(self):
        with pytest.raises(OassisQLSyntaxError) as err:
            parse_oassisql("SELECT VARIABLES\nWHERE\n{$x near}")
        assert err.value.line == 3

    def test_missing_qualifier_rejected(self):
        with pytest.raises(OassisQLSyntaxError):
            parse_oassisql("SELECT VARIABLES\nSATISFYING\n{[] visit $x}")

    def test_fractional_limit_rejected(self):
        with pytest.raises(OassisQLSyntaxError):
            parse_oassisql(
                "SELECT VARIABLES\nSATISFYING\n{[] visit $x}\n"
                "ORDER BY DESC(SUPPORT)\nLIMIT 2.5"
            )

    def test_trailing_tokens_rejected(self):
        with pytest.raises(OassisQLSyntaxError):
            parse_oassisql(
                "SELECT VARIABLES\nWHERE\n{$x near Fall} banana"
            )


names = st.sampled_from(
    ["Place", "Fall", "Forest_Hotel,_Buffalo,_NY", "Buffalo_Zoo", "visit",
     "near", "instanceOf", "hasLabel", "in"]
)
variables = st.sampled_from(["x", "y", "z"]).map(Variable)
terms = st.one_of(
    variables,
    names.map(lambda n: KB[n]),
    st.just(ANYTHING),
    st.sampled_from(["interesting", "fun"]).map(Literal),
)
triples = st.builds(QueryTriple, terms, names.map(lambda n: KB[n]), terms)
qualifiers = st.one_of(
    st.integers(min_value=1, max_value=50).map(lambda k: TopK(k=k)),
    st.floats(min_value=0.0, max_value=1.0, allow_nan=False,
              width=16).map(lambda t: SupportThreshold(threshold=float(t))),
)
clauses = st.builds(
    SatisfyingClause,
    st.lists(triples, min_size=1, max_size=4).map(tuple),
    qualifiers,
)
queries = st.builds(
    OassisQuery,
    st.just(SelectClause()),
    st.lists(triples, min_size=1, max_size=4).map(tuple),
    st.lists(clauses, min_size=1, max_size=3).map(tuple),
)


class TestRoundTripProperties:
    @given(queries)
    def test_print_parse_round_trip(self, query):
        rendered = print_oassisql(query)
        assert parse_oassisql(rendered) == query

    @given(queries)
    def test_printed_form_is_stable(self, query):
        once = print_oassisql(query)
        again = print_oassisql(parse_oassisql(once))
        assert once == again
