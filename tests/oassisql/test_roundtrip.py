"""Printer/parser round-trip and ``ANYTHING`` singleton invariants.

``parse_oassisql(print_oassisql(q)) == q`` structurally for every query
the project ships or produces — the property that makes the printed
text (and QueryLint's line numbers into it) a faithful coordinate
system.
"""

import copy
import pickle

import pytest

from repro.analysis.querylint import query_locations
from repro.core.pipeline import NL2CM
from repro.data.corpus import CORPUS, supported_questions
from repro.oassisql import parse_oassisql, print_oassisql
from repro.oassisql.ast import ANYTHING, Anything

GOLD = [e for e in CORPUS if e.gold_query]


@pytest.fixture(scope="module")
def translations():
    nl2cm = NL2CM()
    return [
        nl2cm.translate(q.text).query for q in supported_questions()
    ]


class TestRoundTrip:
    @pytest.mark.parametrize(
        "entry", GOLD, ids=[e.id for e in GOLD]
    )
    def test_gold_queries_round_trip(self, entry):
        query = parse_oassisql(entry.gold_query)
        assert parse_oassisql(print_oassisql(query)) == query

    def test_translated_queries_round_trip(self, translations):
        assert translations
        for query in translations:
            printed = print_oassisql(query)
            assert parse_oassisql(printed) == query

    def test_round_trip_is_idempotent(self):
        query = parse_oassisql(GOLD[0].gold_query)
        once = print_oassisql(query)
        assert print_oassisql(parse_oassisql(once)) == once

    @pytest.mark.parametrize(
        "entry", GOLD, ids=[e.id for e in GOLD]
    )
    def test_query_locations_match_printed_layout(self, entry):
        from repro.oassisql.ast import TopK

        query = parse_oassisql(entry.gold_query)
        printed = print_oassisql(query).splitlines()
        lines = query_locations(query)
        # The last location lands on the last printed line — except a
        # top-k qualifier, which prints as two lines (ORDER BY + LIMIT)
        # with its location on the first.
        trailing = (
            1 if query.satisfying and isinstance(
                query.satisfying[-1].qualifier, TopK
            ) else 0
        )
        assert max(lines.values()) == len(printed) - trailing
        for i in range(len(query.where)):
            assert not printed[lines[f"where[{i}]"] - 1].startswith(
                ("SELECT", "WHERE", "SATISFYING", "AND")
            )


class TestAnythingSingleton:
    def test_construction_returns_singleton(self):
        assert Anything() is ANYTHING

    def test_equality_and_hash_are_defensive(self):
        assert Anything() == ANYTHING
        assert hash(Anything()) == hash(ANYTHING)
        assert ANYTHING != object()

    def test_copy_preserves_identity(self):
        assert copy.copy(ANYTHING) is ANYTHING
        assert copy.deepcopy(ANYTHING) is ANYTHING

    def test_deepcopied_query_keeps_identity(self):
        query = parse_oassisql(
            "SELECT VARIABLES\nSATISFYING\n{[] visit $x}\n"
            "WITH SUPPORT THRESHOLD = 0.1"
        )
        clone = copy.deepcopy(query)
        assert clone == query
        assert clone.satisfying[0].triples[0].s is ANYTHING

    def test_pickle_round_trip_keeps_identity(self):
        query = parse_oassisql(
            "SELECT VARIABLES\nSATISFYING\n{[] visit $x}\n"
            "WITH SUPPORT THRESHOLD = 0.1"
        )
        clone = pickle.loads(pickle.dumps(query))
        assert clone == query
        assert clone.satisfying[0].triples[0].s is ANYTHING


class TestParserValidateFlag:
    def test_default_validates(self):
        with pytest.raises(Exception, match="LIMIT"):
            parse_oassisql(
                "SELECT VARIABLES\nSATISFYING\n{[] visit $x}\n"
                "ORDER BY DESC(SUPPORT) LIMIT 0"
            )

    def test_validate_false_returns_raw_ast(self):
        query = parse_oassisql(
            "SELECT VARIABLES\nSATISFYING\n{[] visit $x}\n"
            "ORDER BY DESC(SUPPORT) LIMIT 0",
            validate=False,
        )
        assert query.satisfying[0].qualifier.k == 0
