"""Property-based printer/parser round-trip over generated queries.

A seeded :mod:`random` generator (no third-party dependency) builds
arbitrary well-formed :class:`OassisQuery` ASTs — comma-form entity
names, keywords in term position, escape-heavy string literals, int and
float literals, ``[]`` wildcards, both qualifier kinds, projected and
unprojected SELECTs — and asserts the two properties that make the
printed text a faithful coordinate system:

* **structural round-trip**: ``parse(print(q)) == q``;
* **textual fixpoint**: ``print(parse(print(q))) == print(q)``.

Every assertion carries the generator seed, so a failure reproduces
with ``OassisQueryGenerator(seed).query()``.
"""

import random

import pytest

from repro.oassisql import parse_oassisql, print_oassisql
from repro.oassisql.ast import (
    ANYTHING,
    OassisQuery,
    QueryTriple,
    SatisfyingClause,
    SelectClause,
    SupportThreshold,
    TopK,
)
from repro.rdf.ontology import KB
from repro.rdf.terms import Literal, Variable

N_CASES = 500

#: Entity-name shapes the lexer's name token accepts, including the
#: Figure-1 comma forms and (upper-case) keywords in term position.
NAME_PARTS = [
    "Forest_Hotel", "Buffalo", "NY", "visit", "season", "fall",
    "place", "hike", "winter", "_private", "x2", "A", "go",
    "Niagara_Falls", "restaurant",
]
KEYWORD_NAMES = ["SELECT", "WHERE", "SATISFYING", "AND", "SUPPORT",
                 "LIMIT", "VARIABLES"]

#: String-literal raw values, biased toward the printer's escape set.
STRING_VALUES = [
    "plain", "with space", 'say "hi"', "back\\slash", "line\nbreak",
    '\\"', "\\n is two chars", "", "trailing\\", 'mix "q" \\ and\nnl',
]

VARIABLE_NAMES = ["x", "y", "z", "item", "p_2", "_v"]


class OassisQueryGenerator:
    """Deterministic random OASSIS-QL ASTs from one integer seed."""

    def __init__(self, seed: int):
        self.rng = random.Random(seed)

    # -- terms ----------------------------------------------------------------

    def name(self) -> str:
        shape = self.rng.random()
        if shape < 0.15:
            return self.rng.choice(KEYWORD_NAMES)
        if shape < 0.4:
            # Comma-form: Forest_Hotel,_Buffalo,_NY and friends.
            parts = self.rng.sample(NAME_PARTS, self.rng.randint(2, 3))
            sep = self.rng.choice([",_", ","])
            return sep.join(parts)
        return self.rng.choice(NAME_PARTS)

    def number(self) -> Literal:
        if self.rng.random() < 0.5:
            return Literal(self.rng.randint(-1000, 1000))
        value = self.rng.choice([
            self.rng.uniform(-10, 10),
            self.rng.uniform(0, 1),
            self.rng.uniform(-1e6, 1e6) * 10 ** self.rng.randint(-12, 12),
        ])
        return Literal(value)

    def term(self):
        roll = self.rng.random()
        if roll < 0.35:
            return KB[self.name()]
        if roll < 0.6:
            return Variable(self.rng.choice(VARIABLE_NAMES))
        if roll < 0.7:
            return ANYTHING
        if roll < 0.85:
            return Literal(self.rng.choice(STRING_VALUES))
        return self.number()

    # -- clauses --------------------------------------------------------------

    def triple(self) -> QueryTriple:
        return QueryTriple(self.term(), self.term(), self.term())

    def qualifier(self):
        if self.rng.random() < 0.5:
            return TopK(
                k=self.rng.randint(1, 50),
                descending=self.rng.random() < 0.8,
            )
        return SupportThreshold(threshold=self.rng.uniform(0.0, 1.0))

    def satisfying_clause(self) -> SatisfyingClause:
        triples = tuple(
            self.triple() for _ in range(self.rng.randint(1, 3))
        )
        return SatisfyingClause(triples=triples, qualifier=self.qualifier())

    def query(self) -> OassisQuery:
        n_where = self.rng.randint(0, 3)
        n_satisfying = self.rng.randint(0 if n_where else 1, 3)
        where = tuple(self.triple() for _ in range(n_where))
        satisfying = tuple(
            self.satisfying_clause() for _ in range(n_satisfying)
        )
        used = sorted(
            OassisQuery(SelectClause(), where, satisfying).all_variables()
        )
        if used and self.rng.random() < 0.4:
            chosen = self.rng.sample(
                used, self.rng.randint(1, len(used))
            )
            select = SelectClause(variables=tuple(chosen))
        else:
            select = SelectClause()
        return OassisQuery(
            select=select, where=where, satisfying=satisfying
        )


class TestPropertyRoundTrip:
    def test_generated_queries_reach_fixpoint(self):
        for seed in range(N_CASES):
            query = OassisQueryGenerator(seed).query()
            printed = print_oassisql(query)
            reparsed = parse_oassisql(printed)
            assert reparsed == query, (
                f"structural round-trip failed for seed {seed}:\n"
                f"{printed}"
            )
            reprinted = print_oassisql(reparsed)
            assert reprinted == printed, (
                f"textual fixpoint failed for seed {seed}:\n"
                f"first:  {printed!r}\n"
                f"second: {reprinted!r}"
            )

    def test_generator_is_deterministic(self):
        a = OassisQueryGenerator(123).query()
        b = OassisQueryGenerator(123).query()
        assert a == b
        assert print_oassisql(a) == print_oassisql(b)

    def test_generated_queries_validate(self):
        for seed in range(0, N_CASES, 10):
            OassisQueryGenerator(seed).query().validate()


class TestEscapedStringLiterals:
    """Regression: the parser used to unescape only ``\\\"``."""

    @pytest.mark.parametrize("value", STRING_VALUES)
    def test_every_escape_shape_round_trips(self, value):
        query = OassisQuery(
            select=SelectClause(),
            where=(QueryTriple(KB["a"], KB["says"], Literal(value)),),
            satisfying=(),
        )
        printed = print_oassisql(query)
        reparsed = parse_oassisql(printed)
        assert reparsed.where[0].o.value == value
        assert print_oassisql(reparsed) == printed

    def test_backslash_n_stays_two_characters(self):
        # \\n must decode to backslash + 'n', never to a newline.
        printed = 'SELECT VARIABLES\nWHERE\n{a says "back\\\\nslash"}'
        query = parse_oassisql(printed)
        assert query.where[0].o.value == "back\\nslash"
        assert "\n" not in query.where[0].o.value
