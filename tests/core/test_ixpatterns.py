"""Tests for the IX detection pattern language: parsing and matching."""

import pytest

from repro.core.ixpatterns import (
    PatternMatcher,
    parse_patterns,
)
from repro.data.vocabularies import Vocabulary, VocabularyRegistry, \
    load_vocabularies
from repro.errors import PatternSyntaxError
from repro.nlp import parse


PAPER_PATTERN = """\
PATTERN participant_subject TYPE participant ANCHOR $x
$x subject $y
filter(POS($x) = "verb" && $y in V_participant)
"""


@pytest.fixture(scope="module")
def vocabularies():
    return load_vocabularies()


@pytest.fixture(scope="module")
def matcher(vocabularies):
    return PatternMatcher(vocabularies)


class TestPatternParsing:
    def test_paper_example_parses(self):
        patterns = parse_patterns(PAPER_PATTERN)
        assert len(patterns) == 1
        pattern = patterns[0]
        assert pattern.name == "participant_subject"
        assert pattern.ix_type == "participant"
        assert pattern.anchor == "x"
        assert len(pattern.edges) == 1
        # 'subject' is an alias for nsubj.
        assert pattern.edges[0].label == "nsubj"

    def test_uncertain_flag(self):
        patterns = parse_patterns(
            "PATTERN p TYPE lexical ANCHOR $x UNCERTAIN\n"
            'filter(LEMMA($x) in V_opinion)'
        )
        assert patterns[0].uncertain

    def test_multiple_patterns_split_on_blank_lines(self):
        text = PAPER_PATTERN + "\n" + (
            "PATTERN lex TYPE lexical ANCHOR $z\n"
            "filter(LEMMA($z) in V_opinion)"
        )
        assert [p.name for p in parse_patterns(text)] == [
            "participant_subject", "lex"
        ]

    def test_comments_ignored(self):
        text = "# a comment\n" + PAPER_PATTERN
        assert len(parse_patterns(text)) == 1

    def test_bad_header_rejected(self):
        with pytest.raises(PatternSyntaxError):
            parse_patterns("PATERN x TYPE lexical ANCHOR $x\n$x nsubj $y")

    def test_unknown_type_rejected(self):
        with pytest.raises(PatternSyntaxError):
            parse_patterns(
                "PATTERN p TYPE banana ANCHOR $x\n$x nsubj $y"
            )

    def test_unused_anchor_rejected(self):
        with pytest.raises(PatternSyntaxError):
            parse_patterns(
                "PATTERN p TYPE lexical ANCHOR $q\n$x nsubj $y"
            )

    def test_unknown_edge_label_rejected(self):
        with pytest.raises(PatternSyntaxError):
            parse_patterns(
                "PATTERN p TYPE lexical ANCHOR $x\n$x frobnicates $y"
            )

    def test_bad_filter_rejected(self):
        with pytest.raises(PatternSyntaxError):
            parse_patterns(
                "PATTERN p TYPE lexical ANCHOR $x\n"
                "$x nsubj $y\nfilter(POS($x) @ 3)"
            )

    def test_unparenthesised_filter_rejected(self):
        with pytest.raises(PatternSyntaxError):
            parse_patterns(
                "PATTERN p TYPE lexical ANCHOR $x\n"
                "$x nsubj $y\nfilter POS($x) = \"verb\""
            )


class TestMatching:
    def test_paper_pattern_matches_running_example(self, matcher):
        pattern = parse_patterns(PAPER_PATTERN)[0]
        graph = parse("the places we should visit in the fall")
        matches = matcher.match(pattern, graph)
        assert len(matches) == 1
        binding = matches[0].binding
        assert binding["x"].text == "visit"
        assert binding["y"].text == "we"

    def test_no_match_on_general_sentence(self, matcher):
        pattern = parse_patterns(PAPER_PATTERN)[0]
        graph = parse("Delaware Park is near Forest Hotel")
        assert matcher.match(pattern, graph) == []

    def test_node_only_pattern(self, matcher):
        pattern = parse_patterns(
            "PATTERN lex TYPE lexical ANCHOR $x\n"
            'filter(POS($x) = "adjective" && LEMMA($x) in V_opinion)'
        )[0]
        graph = parse("What are the most interesting places?")
        matches = matcher.match(pattern, graph)
        assert [m.anchor_node.text for m in matches] == ["interesting"]

    def test_two_edge_pattern(self, matcher):
        pattern = parse_patterns(
            "PATTERN pp TYPE participant ANCHOR $n\n"
            "$n prep $p\n"
            "$p pobj $y\n"
            "filter(LEMMA($y) in V_participant)"
        )[0]
        graph = parse("Is chocolate milk good for kids?")
        matches = matcher.match(pattern, graph)
        assert len(matches) == 1
        assert matches[0].binding["n"].text == "good"
        assert matches[0].binding["y"].text == "kids"

    def test_wildcard_label(self, matcher):
        pattern = parse_patterns(
            "PATTERN any TYPE participant ANCHOR $a\n"
            "$a * $b\n"
            'filter(TEXT($b) = "we")'
        )[0]
        graph = parse("the places we visit")
        matches = matcher.match(pattern, graph)
        assert len(matches) == 1
        assert matches[0].binding["a"].text == "visit"

    def test_shared_variable_constrains(self, matcher):
        # $v must be the same node in both edges.
        pattern = parse_patterns(
            "PATTERN both TYPE syntactic ANCHOR $v\n"
            "$v aux $m\n"
            "$v nsubj $y\n"
            'filter(LEMMA($m) in V_modal)'
        )[0]
        graph = parse("we should visit Buffalo")
        matches = matcher.match(pattern, graph)
        assert len(matches) == 1
        assert matches[0].binding["v"].text == "visit"

    def test_modal_is_not_a_verb_pos(self, matcher):
        # POS($x) = "verb" must not match a bare modal.
        pattern = parse_patterns(
            "PATTERN v TYPE syntactic ANCHOR $x\n"
            'filter(POS($x) = "verb" && LEMMA($x) in V_modal)'
        )[0]
        graph = parse("What camera should I buy?")
        assert matcher.match(pattern, graph) == []

    def test_or_filter(self, matcher):
        pattern = parse_patterns(
            "PATTERN e TYPE lexical ANCHOR $x\n"
            'filter(TEXT($x) = "visit" || TEXT($x) = "places")'
        )[0]
        graph = parse("the places we visit")
        texts = {m.anchor_node.text for m in matcher.match(pattern, graph)}
        assert texts == {"places", "visit"}

    def test_not_filter(self, matcher):
        pattern = parse_patterns(
            "PATTERN e TYPE lexical ANCHOR $x\n"
            '$x det $d\n'
            'filter(!(TEXT($x) = "places"))'
        )[0]
        graph = parse("the places near the hotel")
        texts = {m.anchor_node.text for m in matcher.match(pattern, graph)}
        assert texts == {"hotel"}

    def test_custom_vocabulary(self):
        registry = load_vocabularies()
        registry.register(Vocabulary("V_custom", ["zorp"]))
        matcher = PatternMatcher(registry)
        pattern = parse_patterns(
            "PATTERN c TYPE lexical ANCHOR $x\n"
            "filter(LEMMA($x) in V_custom)"
        )[0]
        graph = parse("we like zorp")
        assert len(matcher.match(pattern, graph)) == 1

    def test_unknown_vocabulary_raises(self, matcher):
        pattern = parse_patterns(
            "PATTERN c TYPE lexical ANCHOR $x\n"
            "filter(LEMMA($x) in V_missing)"
        )[0]
        graph = parse("we like food")
        with pytest.raises(KeyError):
            matcher.match(pattern, graph)

    def test_edge_free_multivariable_rejected(self, matcher):
        # validate() runs at parse time, so the malformed pattern is
        # rejected at load with the pattern's name in the message.
        with pytest.raises(PatternSyntaxError, match="pattern c"):
            parse_patterns(
                "PATTERN c TYPE lexical ANCHOR $x\n"
                'filter(TEXT($x) = "a" && TEXT($y) = "b")'
            )
