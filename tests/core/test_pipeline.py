"""End-to-end tests for the NL2CM translator pipeline."""

import pytest

from repro.core.pipeline import NL2CM
from repro.errors import InteractionProtocolError, VerificationError
from repro.oassisql import parse_oassisql, print_oassisql
from repro.oassisql.ast import SupportThreshold, TopK
from repro.ui.interaction import ScriptedInteraction, VerifyIXRequest


@pytest.fixture(scope="module")
def nl2cm():
    return NL2CM()


FIGURE1 = """\
SELECT VARIABLES
WHERE
{$x instanceOf Place.
$x near Forest_Hotel,_Buffalo,_NY}
SATISFYING
{$x hasLabel "interesting"}
ORDER BY DESC(SUPPORT)
LIMIT 5
AND
{[] visit $x.
[] in Fall}
WITH SUPPORT THRESHOLD = 0.1"""


class TestFigure1EndToEnd:
    QUESTION = ("What are the most interesting places near Forest Hotel, "
                "Buffalo, we should visit in the fall?")

    def test_exact_figure1_text(self, nl2cm):
        result = nl2cm.translate(self.QUESTION)
        assert result.query_text == FIGURE1

    def test_output_parses_back(self, nl2cm):
        result = nl2cm.translate(self.QUESTION)
        assert parse_oassisql(result.query_text) == result.query

    def test_trace_covers_figure2_stages(self, nl2cm):
        result = nl2cm.translate(self.QUESTION)
        stages = result.trace.stages()
        for stage in ("verification", "nl-parsing", "ix-finder",
                      "ix-creator", "general-query-generator",
                      "individual-triple-creation", "query-composition",
                      "final-query"):
            assert stage in stages

    def test_trace_renders(self, nl2cm):
        result = nl2cm.translate(self.QUESTION)
        rendered = result.trace.render()
        assert "nl-parsing" in rendered
        assert "SELECT VARIABLES" in rendered

    def test_variable_phrases(self, nl2cm):
        result = nl2cm.translate(self.QUESTION)
        assert result.variable_phrases == {"x": "places"}


class TestDemoQuestions:
    """The other questions quoted in the paper translate sensibly."""

    def test_vegas_thrill_rides(self, nl2cm):
        result = nl2cm.translate(
            "Which hotel in Vegas has the best thrill ride?"
        )
        q = result.query
        assert len(q.where) == 4
        assert q.satisfying[0].qualifier == TopK(k=5)

    def test_camera_question(self, nl2cm):
        result = nl2cm.translate(
            "What type of digital camera should I buy?"
        )
        text = result.query_text
        assert "instanceOf CameraType" in text
        assert "[] buy $x" in text

    def test_chocolate_milk(self, nl2cm):
        result = nl2cm.translate("Is chocolate milk good for kids?")
        text = result.query_text
        assert 'Chocolate_Milk hasLabel "good for kids"' in text

    def test_rephrased_coffee_question(self, nl2cm):
        result = nl2cm.translate(
            "At what container should I store coffee?"
        )
        text = result.query_text
        assert "instanceOf Container" in text
        assert "[] store" in text

    def test_all_outputs_are_valid_oassisql(self, nl2cm):
        questions = [
            "Which hotel in Vegas has the best thrill ride?",
            "What type of digital camera should I buy?",
            "Is chocolate milk good for kids?",
            "Where do you visit in Buffalo?",
            "Can you recommend a romantic restaurant in Paris?",
            "Which fiber-rich dishes do people like to eat for breakfast?",
        ]
        for question in questions:
            result = nl2cm.translate(question)
            reparsed = parse_oassisql(result.query_text)
            assert reparsed == result.query, question


class TestVerificationIntegration:
    def test_unsupported_question_raises_with_tips(self, nl2cm):
        with pytest.raises(VerificationError) as err:
            nl2cm.translate("How should I store coffee?")
        assert err.value.tips

    def test_verify_method(self, nl2cm):
        assert not nl2cm.verify("Why is the sky blue?").ok
        assert nl2cm.verify("Where do you visit in Buffalo?").ok


class TestUncertainIXVerification:
    QUESTION = "Where do teenagers hang out?"

    def test_user_confirms_uncertain_ix(self, nl2cm):
        provider = ScriptedInteraction([[True], 0.1])
        result = nl2cm.translate(self.QUESTION, interaction=provider)
        assert any(
            isinstance(req, VerifyIXRequest)
            for req, _ in provider.transcript
        )
        assert "[] hang $x" in result.query_text

    def test_user_rejects_uncertain_ix(self, nl2cm):
        provider = ScriptedInteraction([[False]])
        result = nl2cm.translate(self.QUESTION, interaction=provider)
        assert "hang" not in result.query_text

    def test_auto_mode_accepts_uncertain(self, nl2cm):
        result = nl2cm.translate(self.QUESTION)
        assert "[] hang $x" in result.query_text

    def test_too_few_answers_raise_protocol_error(self, nl2cm):
        # A misbehaving provider that answers the verification dialog
        # with an empty list; zip() used to truncate this silently,
        # leaving the uncertain IX unreviewed.
        provider = ScriptedInteraction([[]])
        with pytest.raises(
            InteractionProtocolError, match=r"needs 1 answer\(s\)"
        ) as err:
            nl2cm.translate(self.QUESTION, interaction=provider)
        assert "returned 0" in str(err.value)

    def test_too_many_answers_raise_protocol_error(self, nl2cm):
        provider = ScriptedInteraction([[True, False, True]])
        with pytest.raises(InteractionProtocolError, match="returned 3"):
            nl2cm.translate(self.QUESTION, interaction=provider)

    def test_certain_ix_not_verified(self, nl2cm):
        provider = ScriptedInteraction([], strict=True)
        provider._answers = [5]  # only the LIMIT question is allowed
        result = nl2cm.translate(
            "What are the most interesting places in Paris?",
            interaction=provider,
        )
        assert not any(
            isinstance(req, VerifyIXRequest)
            for req, _ in provider.transcript
        )


class TestDisambiguationIntegration:
    def test_buffalo_dialogue_end_to_end(self):
        from repro.ui.interaction import DisambiguationRequest
        nl2cm = NL2CM()  # fresh feedback store
        provider = ScriptedInteraction([1, 0.1])
        result = nl2cm.translate(
            "Where do you visit in Buffalo?", interaction=provider
        )
        request = provider.transcript[0][0]
        assert isinstance(request, DisambiguationRequest)
        chosen = request.candidates[1]
        assert chosen.iri.local_name in result.query_text

    def test_feedback_survives_across_translations(self):
        nl2cm = NL2CM()
        provider = ScriptedInteraction([1, 0.1])
        nl2cm.translate("Where do you visit in Buffalo?",
                        interaction=provider)
        strict = ScriptedInteraction([0.1], strict=True)
        # Second run: only the threshold question remains.
        nl2cm.translate("Where do you visit in Buffalo?",
                        interaction=strict)


class TestTimings:
    def test_trace_timings_are_positive(self, nl2cm):
        result = nl2cm.translate("Where do you visit in Buffalo?")
        timings = result.trace.timings()
        assert timings["nl-parsing"] >= 0
        assert timings["general-query-generator"] >= 0


class TestTaggerSelection:
    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError, match="tagger"):
            NL2CM(tagger="neural")

    def test_rules_mode_is_byte_identical_to_the_default(self):
        questions = [
            "Where do you visit in Buffalo?",
            "What are the most interesting places near Forest Hotel, "
            "Buffalo, we should visit in the fall?",
            "Which restaurants in Buffalo serve vegetarian food?",
        ]
        default = NL2CM()
        explicit = NL2CM(tagger="rules")
        for question in questions:
            assert (
                default.translate(question).query_text
                == explicit.translate(question).query_text
            )

    def test_learned_mode_translates_the_demo_question(self):
        nl2cm = NL2CM(tagger="learned")
        assert nl2cm.tagger_mode == "learned"
        result = nl2cm.translate("Where do you visit in Buffalo?")
        assert "[] visit $x" in result.query_text
