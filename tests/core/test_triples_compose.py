"""Tests for Individual Triple Creation and Query Composition."""

import pytest

from repro.core.compose import QueryComposer
from repro.core.ixdetect import IXDetector
from repro.core.triples import IndividualTripleCreator
from repro.data.ontologies import load_merged_ontology
from repro.errors import CompositionError
from repro.freya.generator import GeneralQueryGenerator
from repro.nlp import parse
from repro.oassisql.ast import ANYTHING, Anything, SupportThreshold, TopK
from repro.rdf.ontology import KB
from repro.rdf.terms import Literal, Variable
from repro.ui.interaction import (
    AutoInteraction,
    LimitRequest,
    ProjectionRequest,
    ScriptedInteraction,
    ThresholdRequest,
)


@pytest.fixture(scope="module")
def detector():
    return IXDetector()


@pytest.fixture(scope="module")
def generator():
    return GeneralQueryGenerator(load_merged_ontology())


@pytest.fixture(scope="module")
def creator():
    return IndividualTripleCreator()


@pytest.fixture(scope="module")
def composer():
    return QueryComposer()


def run(detector, generator, creator, composer, text, provider=None):
    provider = provider or AutoInteraction()
    graph = parse(text)
    ixs = detector.detect(graph)
    general = generator.generate(graph, provider)
    individual = creator.create(graph, ixs)
    composed = composer.compose(graph, ixs, individual, general, provider)
    return graph, ixs, individual, composed


class TestIndividualTripleCreation:
    def test_habit_projects_participant_out(self, detector, creator):
        graph = parse("the places we should visit")
        ixs = detector.detect(graph)
        triples = creator.create(graph, ixs)
        main = triples[0]
        assert isinstance(main.s, Anything)
        assert main.p == KB.visit

    def test_modal_does_not_appear(self, detector, creator):
        # Footnote 2: "should" is implied by SATISFYING, never rendered.
        graph = parse("the places we should visit")
        triples = creator.create(graph, detector.detect(graph))
        for t in triples:
            for term in t.terms():
                assert getattr(term, "local_name", "") != "should"

    def test_temporal_pp_becomes_triple(self, detector, creator):
        graph = parse("the places we should visit in the fall")
        triples = creator.create(graph, detector.detect(graph))
        assert len(triples) == 2
        assert triples[1].p == KB["in"]

    def test_unit_ids_group_fact_sets(self, detector, creator):
        graph = parse("the places we should visit in the fall")
        triples = creator.create(graph, detector.detect(graph))
        assert triples[0].unit == triples[1].unit

    def test_opinion_triple(self, detector, creator):
        graph = parse("What are the most interesting places?")
        triples = creator.create(graph, detector.detect(graph))
        opinion = next(t for t in triples if t.p == KB.hasLabel)
        assert opinion.o == Literal("interesting")

    def test_opinion_label_with_participant_pp(self, detector, creator):
        graph = parse("Is chocolate milk good for kids?")
        triples = creator.create(graph, detector.detect(graph))
        opinion = next(t for t in triples if t.p == KB.hasLabel)
        assert opinion.o == Literal("good for kids")

    def test_pronoun_object_projected_out(self, detector, creator):
        graph = parse("We love it.")
        triples = creator.create(graph, detector.detect(graph))
        assert isinstance(triples[0].o, Anything)

    def test_go_gerund_predicate(self, detector, creator):
        graph = parse("Where do you go hiking?")
        triples = creator.create(graph, detector.detect(graph))
        assert triples[0].p == KB.hike


class TestComposition:
    def test_figure1_structure(self, detector, generator, creator,
                               composer):
        graph, ixs, individual, composed = run(
            detector, generator, creator, composer,
            "What are the most interesting places near Forest Hotel, "
            "Buffalo, we should visit in the fall?",
        )
        query = composed.query
        assert len(query.where) == 2
        assert len(query.satisfying) == 2
        assert query.satisfying[0].qualifier == TopK(k=5)
        assert query.satisfying[1].qualifier == SupportThreshold(0.1)

    def test_variable_alignment_across_clauses(
        self, detector, generator, creator, composer
    ):
        graph, ixs, individual, composed = run(
            detector, generator, creator, composer,
            "What are the most interesting places near Forest Hotel, "
            "Buffalo, we should visit in the fall?",
        )
        query = composed.query
        x = Variable("x")
        assert query.where[0].s == x
        sat_vars = query.satisfying_variables()
        assert sat_vars == {"x"}

    def test_wh_target_gets_x(self, detector, generator, creator,
                              composer):
        graph, ixs, individual, composed = run(
            detector, generator, creator, composer,
            "Which hotel in Vegas has the best thrill ride?",
        )
        assert composed.variable_phrases["x"] == "hotel"
        assert composed.variable_phrases["y"] == "ride"

    def test_limit_interaction(self, detector, generator, creator,
                               composer):
        provider = ScriptedInteraction([7])
        graph, ixs, individual, composed = run(
            detector, generator, creator, composer,
            "What are the most interesting places in Paris?",
            provider,
        )
        assert composed.query.satisfying[0].qualifier == TopK(k=7)
        request = provider.transcript[0][0]
        assert isinstance(request, LimitRequest)

    def test_threshold_interaction(self, detector, generator, creator,
                                   composer):
        # First answer resolves the "Buffalo" disambiguation, the second
        # is the threshold.
        provider = ScriptedInteraction([0, 0.25])
        graph, ixs, individual, composed = run(
            detector, generator, creator, composer,
            "Where do you visit in Buffalo?",
            provider,
        )
        assert composed.query.satisfying[0].qualifier == (
            SupportThreshold(0.25)
        )

    def test_projection_interaction(self, detector, generator, creator,
                                    composer):
        # Two variables -> the user may project; keep only $x.
        provider = ScriptedInteraction([5, ["x"]])
        graph, ixs, individual, composed = run(
            detector, generator, creator, composer,
            "Which hotel in Vegas has the best thrill ride?",
            provider,
        )
        assert composed.query.select.variables == ("x",)

    def test_projection_default_keeps_all(self, detector, generator,
                                          creator, composer):
        graph, ixs, individual, composed = run(
            detector, generator, creator, composer,
            "Which hotel in Vegas has the best thrill ride?",
        )
        assert composed.query.select.projects_all

    def test_single_variable_skips_projection(self, detector, generator,
                                              creator, composer):
        provider = ScriptedInteraction([], strict=True)
        # Only threshold is asked; strict script with no answers would
        # raise if projection were requested.
        provider._answers = [0.1]
        graph, ixs, individual, composed = run(
            detector, generator, creator, composer,
            "Where do you visit?", provider,
        )
        assert composed.query.select.projects_all

    def test_least_gives_ascending_topk(self, detector, generator,
                                        creator, composer):
        graph, ixs, individual, composed = run(
            detector, generator, creator, composer,
            "What are the least crowded museums in Paris?",
        )
        qualifier = composed.query.satisfying[0].qualifier
        assert isinstance(qualifier, TopK)
        assert not qualifier.descending

    def test_empty_request_fails_composition(self, composer):
        from repro.freya.generator import GeneralQueryResult
        graph = parse("hello there friend")
        empty = GeneralQueryResult(
            triples=[], entity_bindings={}, class_bindings={},
            coreferences={}, target=None, mentions=[], disambiguations=[],
        )
        with pytest.raises(CompositionError):
            composer.compose(graph, [], [], empty, AutoInteraction())

    def test_deletion_of_overlapping_general_triples(self, detector,
                                                     composer):
        """A general triple minted from IX core nodes must be deleted."""
        from repro.core.ir import NodeTerm, ProtoTriple
        from repro.freya.generator import GeneralQueryResult

        graph = parse("the places we should visit")
        detector_ixs = IXDetector().detect(graph)
        visit = next(n for n in graph if n.text == "visit")
        places = next(n for n in graph if n.text == "places")
        bogus = ProtoTriple(
            s=NodeTerm(places), p=KB.visit, o=KB.Place,
            origin="general",
            source_nodes=frozenset({visit.index}),
        )
        legit = ProtoTriple(
            s=NodeTerm(places), p=KB.instanceOf, o=KB.Place,
            origin="general",
            source_nodes=frozenset({places.index}),
        )
        general = GeneralQueryResult(
            triples=[bogus, legit], entity_bindings={},
            class_bindings={places.index: KB.Place}, coreferences={},
            target=places, mentions=[], disambiguations=[],
        )
        individual = IndividualTripleCreator().create(graph, detector_ixs)
        composed = composer.compose(
            graph, detector_ixs, individual, general, AutoInteraction()
        )
        assert composed.deleted_general == [bogus]
        assert len(composed.query.where) == 1
