"""Tests for IXFinder / IXCreator on the paper's example sentences."""

import pytest

from repro.core.ixdetect import IXDetector, load_default_patterns
from repro.nlp import parse


@pytest.fixture(scope="module")
def detector():
    return IXDetector()


def detect(detector, text):
    graph = parse(text)
    return graph, detector.detect(graph)


class TestDefaultPatterns:
    def test_patterns_load(self):
        patterns = load_default_patterns()
        names = {p.name for p in patterns}
        assert "lexical_opinion" in names
        assert "participant_subject" in names
        assert "syntactic_modal" in names

    def test_all_three_types_covered(self):
        types = {p.ix_type for p in load_default_patterns()}
        assert types == {"lexical", "participant", "syntactic"}


class TestRunningExample:
    SENTENCE = ("What are the most interesting places near Forest Hotel, "
                "Buffalo, we should visit in the fall?")

    @pytest.fixture(scope="class")
    def result(self, detector):
        graph = parse(self.SENTENCE)
        return graph, detector.detect(graph)

    def test_two_units(self, result):
        graph, ixs = result
        assert len(ixs) == 2

    def test_opinion_unit(self, result):
        graph, ixs = result
        opinion = next(ix for ix in ixs if ix.kind == "opinion")
        assert opinion.anchor.text == "interesting"
        assert opinion.types == {"lexical"}
        assert opinion.modified.text == "places"
        assert "most" in opinion.span_text(graph)

    def test_habit_unit(self, result):
        graph, ixs = result
        habit = next(ix for ix in ixs if ix.kind == "habit")
        assert habit.anchor.text == "visit"
        # participant ("we") and syntactic ("should") both fire.
        assert habit.types == {"participant", "syntactic"}
        assert habit.subject.text == "we"
        # Relative-clause gap: the object is the antecedent "places".
        assert habit.object.text == "places"

    def test_habit_temporal_pp(self, result):
        graph, ixs = result
        habit = next(ix for ix in ixs if ix.kind == "habit")
        assert [(p.text, o.text) for p, o in habit.pps] == [("in", "fall")]

    def test_general_parts_not_in_ix(self, result):
        graph, ixs = result
        all_nodes = set()
        for ix in ixs:
            all_nodes |= ix.nodes
        hotel = next(n for n in graph if n.text == "Hotel")
        near = next(n for n in graph if n.text == "near")
        assert hotel.index not in all_nodes
        assert near.index not in all_nodes


class TestIndividualityTypes:
    def test_lexical_only(self, detector):
        graph, ixs = detect(detector, "Which hotel in Vegas has the best "
                                      "thrill ride?")
        assert len(ixs) == 1
        assert ixs[0].kind == "opinion"
        assert ixs[0].anchor.text == "best"
        assert ixs[0].modified.text == "ride"

    def test_participant_you(self, detector):
        graph, ixs = detect(detector, "Where do you visit in Buffalo?")
        habit = next(ix for ix in ixs if ix.kind == "habit")
        assert "participant" in habit.types
        assert habit.subject.text == "you"
        # Open wh-object: "Where" stands for the asked-about place.
        assert habit.object.tag == "WRB"

    def test_syntactic_should_obama(self, detector):
        # The paper's example: "Obama should visit Buffalo" — individual
        # because of "should", not because of the subject.
        graph, ixs = detect(detector, "Obama should visit Buffalo.")
        habit = next(ix for ix in ixs if ix.kind == "habit")
        assert "syntactic" in habit.types
        assert habit.anchor.text == "visit"

    def test_possessive_participant(self, detector):
        graph, ixs = detect(detector, "What are my kids' favorite dishes?")
        assert any("participant" in ix.types for ix in ixs)

    def test_opinion_with_participant_pp(self, detector):
        graph, ixs = detect(detector, "Is chocolate milk good for kids?")
        opinion = next(ix for ix in ixs if ix.kind == "opinion")
        assert opinion.anchor.text == "good"
        assert opinion.modified.text == "milk"
        assert [(p.text, o.text) for p, o in opinion.pps] == [
            ("for", "kids")
        ]

    def test_no_ix_in_pure_general_question(self, detector):
        graph, ixs = detect(
            detector, "Delaware Park is near Forest Hotel."
        )
        assert ixs == []


class TestCompletion:
    def test_negation_flag(self, detector):
        graph, ixs = detect(detector, "We do not eat meat.")
        habit = next(ix for ix in ixs if ix.kind == "habit")
        assert habit.negated

    def test_pronoun_object(self, detector):
        graph, ixs = detect(detector, "We love it.")
        habit = next(ix for ix in ixs if ix.kind == "habit")
        assert habit.object is not None and habit.object.tag == "PRP"

    def test_go_plus_gerund(self, detector):
        graph, ixs = detect(detector, "Where do you go hiking in the "
                                      "winter?")
        habit = next(ix for ix in ixs if ix.kind == "habit")
        winter_pps = [(p.text, o.text) for p, o in habit.pps]
        assert ("in", "winter") in winter_pps

    def test_merged_anchor_units(self, detector):
        # "should" and "we" both anchor on "visit": one unit, two types.
        graph, ixs = detect(detector, "the places we should visit")
        habits = [ix for ix in ixs if ix.kind == "habit"]
        assert len(habits) == 1
        assert habits[0].types == {"participant", "syntactic"}
        assert len(habits[0].patterns) >= 2

    def test_uncertain_flag_from_pattern(self, detector):
        # habit_generic_subject is marked UNCERTAIN in the default set,
        # and no certain pattern fires on "teenagers hang out".
        graph, ixs = detect(detector, "Where do teenagers hang out?")
        habit = next(ix for ix in ixs if ix.kind == "habit")
        assert habit.uncertain

    def test_certain_pattern_overrides_uncertainty(self, detector):
        # "popular" fires the certain lexical pattern and the uncertain
        # participant_pobj pattern; the merged unit is certain.
        graph, ixs = detect(detector,
                            "Which museums are popular with locals?")
        popular = next(ix for ix in ixs if ix.anchor.text == "popular")
        assert not popular.uncertain

    def test_locative_pp_stays_general(self, detector):
        graph, ixs = detect(detector, "Where do you visit in Buffalo?")
        habit = next(ix for ix in ixs if ix.kind == "habit")
        assert all(o.text != "Buffalo" for _, o in habit.pps)

    def test_span_text_is_readable(self, detector):
        graph, ixs = detect(detector, "the places we should visit")
        habit = next(ix for ix in ixs if ix.kind == "habit")
        span = habit.span_text(graph)
        assert "we" in span and "visit" in span
