"""Tests for the question verification step."""

import pytest

from repro.core.verification import Verifier


@pytest.fixture(scope="module")
def verifier():
    return Verifier()


class TestSupportedQuestions:
    @pytest.mark.parametrize("question", [
        "What are the most interesting places near Forest Hotel, Buffalo, "
        "we should visit in the fall?",
        "Which hotel in Vegas has the best thrill ride?",
        "What type of digital camera should I buy?",
        "Is chocolate milk good for kids?",
        "Where do you visit in Buffalo?",
        "At what container should I store coffee?",
        "Can you recommend a romantic restaurant in Paris?",
    ])
    def test_demo_questions_pass(self, verifier, question):
        assert verifier.verify(question).ok


class TestUnsupportedQuestions:
    def test_how_rejected(self, verifier):
        # The paper's own example of an unsupported question.
        result = verifier.verify("How should I store coffee?")
        assert not result.ok
        assert result.reason == "descriptive-how"
        assert any("container" in tip for tip in result.tips)

    def test_how_to_rejected(self, verifier):
        assert not verifier.verify("How to cook rice?").ok

    def test_why_rejected(self, verifier):
        result = verifier.verify("Why do people like jogging?")
        assert not result.ok
        assert result.reason == "descriptive-why"
        assert result.tips

    def test_for_what_purpose_rejected(self, verifier):
        result = verifier.verify("For what purpose is baking soda used?")
        assert result.reason == "descriptive-purpose"

    def test_empty_rejected(self, verifier):
        assert verifier.verify("").reason == "empty"
        assert verifier.verify("   ").reason == "empty"

    def test_single_word_rejected(self, verifier):
        assert verifier.verify("Buffalo?").reason == "too-short"

    def test_multiple_sentences_rejected(self, verifier):
        result = verifier.verify(
            "I am going to Buffalo. What should I see?"
        )
        assert result.reason == "multiple-sentences"

    def test_no_content_rejected(self, verifier):
        assert verifier.verify("??? !!!").reason == "no-content"

    def test_too_long_rejected(self, verifier):
        long_question = "Which " + "very " * 70 + "good hotel is best?"
        assert verifier.verify(long_question).reason == "too-long"

    def test_rejections_carry_tips(self, verifier):
        for question in ("How should I store coffee?", "Why is it so?",
                         ""):
            result = verifier.verify(question)
            assert not result.ok
            assert result.tips, question

    def test_how_mid_sentence_is_fine(self, verifier):
        # Only question-initial "how" is the descriptive form.
        assert verifier.verify("Do you know how good this is?").ok
