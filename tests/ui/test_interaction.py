"""Tests for the interaction requests and providers."""

import pytest

from repro.errors import (
    InteractionRequired,
    InvalidAnswerError,
    ReproError,
)
from repro.rdf.ontology import EntityMatch
from repro.rdf.terms import IRI
from repro.ui.interaction import (
    AutoInteraction,
    ConsoleInteraction,
    DisambiguationRequest,
    LimitRequest,
    ProjectionRequest,
    ScriptedInteraction,
    ThresholdRequest,
    VerifyIXRequest,
)


def match(name):
    return EntityMatch(IRI(f"http://x/{name}"), name, 0.9, "entity")


class TestRequests:
    def test_verify_default_accepts_all(self):
        req = VerifyIXRequest(spans=("a", "b"))
        assert req.default() == [True, True]
        assert "[0] a" in req.prompt()

    def test_disambiguation_default_is_top(self):
        req = DisambiguationRequest("Buffalo", (match("NY"), match("IL")))
        assert req.default() == 0
        assert "NY" in req.prompt()

    def test_limit_default(self):
        assert LimitRequest("places", default_value=7).default() == 7

    def test_threshold_default(self):
        assert ThresholdRequest("visits").default() == 0.1

    def test_projection_default_keeps_all(self):
        req = ProjectionRequest(variables=(("x", "places"), ("y", "guide")))
        assert req.default() == ["x", "y"]
        assert "$x" in req.prompt()


class TestAutoInteraction:
    def test_configured_defaults(self):
        auto = AutoInteraction(default_limit=9, default_threshold=0.3)
        assert auto.ask(LimitRequest("p")) == 9
        assert auto.ask(ThresholdRequest("p")) == 0.3

    def test_other_requests_use_request_default(self):
        auto = AutoInteraction()
        assert auto.ask(VerifyIXRequest(spans=("a",))) == [True]


class TestScriptedInteraction:
    def test_answers_in_order(self):
        provider = ScriptedInteraction([3, 0.5])
        assert provider.ask(LimitRequest("p")) == 3
        assert provider.ask(ThresholdRequest("p")) == 0.5

    def test_transcript_records_pairs(self):
        provider = ScriptedInteraction([3])
        provider.ask(LimitRequest("p"))
        assert len(provider.transcript) == 1

    def test_fallback_to_defaults(self):
        provider = ScriptedInteraction([])
        assert provider.ask(LimitRequest("p")) == 5

    def test_strict_raises_when_exhausted(self):
        provider = ScriptedInteraction([], strict=True)
        with pytest.raises(InteractionRequired):
            provider.ask(LimitRequest("p"))


class TestConsoleParsing:
    def test_verify_parse(self):
        parsed = ConsoleInteraction._parse(
            VerifyIXRequest(spans=("a", "b", "c")), "yn"
        )
        assert parsed == [True, False, True]

    def test_disambiguation_parse(self):
        req = DisambiguationRequest("b", (match("NY"), match("IL")))
        assert ConsoleInteraction._parse(req, "1") == 1
        with pytest.raises(ValueError):
            ConsoleInteraction._parse(req, "5")

    def test_limit_parse(self):
        assert ConsoleInteraction._parse(LimitRequest("p"), "12") == 12
        with pytest.raises(ValueError):
            ConsoleInteraction._parse(LimitRequest("p"), "0")

    def test_threshold_parse(self):
        assert ConsoleInteraction._parse(
            ThresholdRequest("p"), "0.4"
        ) == 0.4
        with pytest.raises(ValueError):
            ConsoleInteraction._parse(ThresholdRequest("p"), "3")

    def test_projection_parse(self):
        req = ProjectionRequest(variables=(("x", "a"), ("y", "b")))
        assert ConsoleInteraction._parse(req, "$x, y") == ["x", "y"]


class FakeConsole:
    """Scripted stdin/stdout for ConsoleInteraction tests."""

    def __init__(self, lines):
        self.lines = list(lines)
        self.printed = []

    def input(self, prompt):
        return self.lines.pop(0)

    def print(self, message):
        self.printed.append(message)

    def console(self, **kwargs):
        return ConsoleInteraction(
            input_fn=self.input, print_fn=self.print, **kwargs
        )


class TestConsoleGarbageInput:
    """Regression: garbage numeric input used to escape as a bare
    ValueError and sink the whole translation."""

    def test_garbage_is_typed_not_bare(self):
        with pytest.raises(InvalidAnswerError) as exc_info:
            ConsoleInteraction._parse(LimitRequest("p"), "lots")
        # Still a ValueError for callers that catch the old shape.
        assert isinstance(exc_info.value, ValueError)
        assert isinstance(exc_info.value, ReproError)

    def test_garbage_threshold_is_typed(self):
        with pytest.raises(InvalidAnswerError):
            ConsoleInteraction._parse(ThresholdRequest("p"), "half")

    def test_garbage_disambiguation_is_typed(self):
        req = DisambiguationRequest("b", (match("NY"),))
        with pytest.raises(InvalidAnswerError):
            ConsoleInteraction._parse(req, "first one")

    def test_ask_reprompts_then_accepts(self):
        fake = FakeConsole(["lots", "7"])
        assert fake.console().ask(LimitRequest("p")) == 7
        # One complaint was printed between the two attempts.
        assert any("try again" in m for m in fake.printed)

    def test_ask_falls_back_to_default_after_max_attempts(self):
        fake = FakeConsole(["a", "b", "c"])
        answer = fake.console(max_attempts=3).ask(LimitRequest("p"))
        # Same graceful path an empty answer takes: the admin default.
        assert answer == AutoInteraction().default_limit
        assert any("default" in m for m in fake.printed)

    def test_empty_answer_still_takes_the_default(self):
        fake = FakeConsole([""])
        assert fake.console().ask(ThresholdRequest("p")) == 0.1

    def test_out_of_range_values_reprompt_too(self):
        fake = FakeConsole(["0", "-3", "4"])
        assert fake.console().ask(LimitRequest("p")) == 4

    def test_max_attempts_validated(self):
        with pytest.raises(ValueError):
            ConsoleInteraction(max_attempts=0)


class TestScriptedThreadSafety:
    def test_concurrent_asks_hand_out_each_answer_once(self):
        import threading

        script = ScriptedInteraction(list(range(64)), strict=True)
        taken = []

        def worker():
            for _ in range(8):
                taken.append(script.ask(LimitRequest("p")))

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert sorted(taken) == list(range(64))
        assert len(script.transcript) == 64
