"""Tests for the end-user session (translate -> edit -> submit)."""

import pytest

from repro import NL2CM, OassisEngine, SimulatedCrowd
from repro.crowd.scenarios import buffalo_travel_truth
from repro.data.ontologies import load_merged_ontology
from repro.errors import (
    OassisQLSyntaxError,
    OassisQLValidationError,
    ReproError,
    VerificationError,
)
from repro.ui.session import NL2CMSession


@pytest.fixture(scope="module")
def session():
    ontology = load_merged_ontology()
    crowd = SimulatedCrowd(buffalo_travel_truth(), size=100, seed=9)
    return NL2CMSession(
        nl2cm=NL2CM(ontology=ontology),
        engine=OassisEngine(ontology, crowd),
    )


QUESTION = ("What are the most interesting places near Forest Hotel, "
            "Buffalo, we should visit in the fall?")


class TestAsk:
    def test_ask_returns_entry_with_query(self, session):
        entry = session.ask(QUESTION)
        assert entry.query_text.startswith("SELECT VARIABLES")
        assert entry in session.history

    def test_unsupported_question_raises(self, session):
        with pytest.raises(VerificationError):
            session.ask("How should I store coffee?")

    def test_history_grows(self):
        session = NL2CMSession()
        session.ask("Where do you visit in Buffalo?")
        session.ask("Is chocolate milk good for kids?")
        assert len(session.history) == 2


class TestEdit:
    def test_edit_replaces_query(self, session):
        entry = session.ask(QUESTION)
        edited_text = entry.query_text.replace("LIMIT 5", "LIMIT 3")
        session.edit(entry, edited_text)
        assert entry.edited
        assert "LIMIT 3" in entry.query_text

    def test_broken_edit_rejected(self, session):
        entry = session.ask(QUESTION)
        with pytest.raises(OassisQLSyntaxError):
            session.edit(entry, "SELECT banana")
        assert not entry.edited  # original kept

    def test_semantically_invalid_edit_rejected(self, session):
        entry = session.ask(QUESTION)
        bad = entry.query_text.replace("LIMIT 5", "LIMIT 0")
        with pytest.raises(OassisQLValidationError):
            session.edit(entry, bad)

    def test_edit_clears_stale_execution(self, session):
        entry = session.ask(QUESTION)
        session.submit(entry)
        session.edit(entry, entry.query_text.replace("LIMIT 5",
                                                     "LIMIT 2"))
        assert entry.execution is None


class TestSubmit:
    def test_submit_executes_with_crowd(self, session):
        entry = session.ask(QUESTION)
        result = session.submit(entry)
        assert result.tasks_used > 0
        assert entry.executed

    def test_progress_before_and_after(self, session):
        entry = session.ask(QUESTION)
        assert session.progress(entry)["status"] == "not submitted"
        session.submit(entry)
        progress = session.progress(entry)
        assert progress["status"] == "completed"
        assert progress["tasks"] > 0
        assert progress["results"] >= 1

    def test_submit_without_engine_raises(self):
        session = NL2CMSession()
        entry = session.ask("Where do you visit in Buffalo?")
        with pytest.raises(ReproError):
            session.submit(entry)

    def test_edited_query_changes_execution(self, session):
        entry = session.ask(QUESTION)
        full = session.submit(entry)
        session.edit(entry, entry.query_text.replace("LIMIT 5",
                                                     "LIMIT 1"))
        narrowed = session.submit(entry)
        assert len(narrowed.accepted) <= len(full.accepted)
        assert len(narrowed.accepted) == 1

    def test_transcript(self, session):
        lines = session.transcript()
        assert lines
        assert any("mined pattern" in line for line in lines)
