"""Tests for the OASSIS query engine on the demo scenarios."""

import pytest

from repro.crowd.scenarios import (
    buffalo_travel_truth,
    dietician_truth,
    habit_fact_set,
    vegas_rides_truth,
)
from repro.crowd.simulator import SimulatedCrowd
from repro.crowd.model import GroundTruth
from repro.data.ontologies import load_merged_ontology
from repro.errors import BudgetExhausted, EngineError
from repro.oassis.engine import EngineConfig, OassisEngine
from repro.oassisql import parse_oassisql
from repro.rdf.ontology import KB


FIGURE1 = """\
SELECT VARIABLES
WHERE
{$x instanceOf Place.
$x near Forest_Hotel,_Buffalo,_NY}
SATISFYING
{$x hasLabel "interesting"}
ORDER BY DESC(SUPPORT)
LIMIT 5
AND
{[] visit $x.
[] in Fall}
WITH SUPPORT THRESHOLD = 0.1"""


@pytest.fixture(scope="module")
def ontology():
    return load_merged_ontology()


def make_engine(ontology, truth, size=120, noise=0.08, seed=11,
                **config):
    crowd = SimulatedCrowd(truth, size=size, noise=noise, seed=seed)
    return OassisEngine(ontology, crowd, EngineConfig(**config))


class TestFigure1Evaluation:
    def test_where_bindings(self, ontology):
        engine = make_engine(ontology, buffalo_travel_truth())
        result = engine.evaluate(parse_oassisql(FIGURE1))
        # Six places are near Forest Hotel in the snapshot.
        assert result.where_bindings == 6

    def test_accepted_bindings_match_ground_truth(self, ontology):
        engine = make_engine(ontology, buffalo_travel_truth())
        result = engine.evaluate(parse_oassisql(FIGURE1))
        accepted_places = {
            o.binding["x"].local_name for o in result.accepted
        }
        # Elmwood Village is liked but below the 0.1 fall-visit
        # threshold is false (0.08 < 0.1): excluded.
        assert "Delaware_Park" in accepted_places
        assert "Buffalo_Zoo" in accepted_places
        assert "Elmwood_Village" not in accepted_places

    def test_ranking_follows_support(self, ontology):
        engine = make_engine(ontology, buffalo_travel_truth())
        result = engine.evaluate(parse_oassisql(FIGURE1))
        ranked = [b["x"].local_name for b in result.bindings()]
        assert ranked[0] == "Delaware_Park"

    def test_tasks_are_generated(self, ontology):
        engine = make_engine(ontology, buffalo_travel_truth())
        result = engine.evaluate(parse_oassisql(FIGURE1))
        assert result.tasks_used > 0
        questions = {t.question for t in result.tasks}
        assert any("interesting" in q for q in questions)
        assert any(q.startswith("How often do you visit") for q in
                   questions)


class TestThresholdClauses:
    QUERY = """\
SELECT VARIABLES
WHERE
{$x instanceOf Dish.
$x richIn Fiber}
SATISFYING
{[] eat $x.
[] for Breakfast}
WITH SUPPORT THRESHOLD = 0.1"""

    def test_dietician_scenario(self, ontology):
        engine = make_engine(ontology, dietician_truth())
        result = engine.evaluate(parse_oassisql(self.QUERY))
        accepted = {o.binding["x"].local_name for o in result.accepted}
        assert "Oatmeal" in accepted
        assert "Hummus" in accepted
        assert "Lentil_Soup" not in accepted  # 0.07 < 0.1

    def test_sequential_test_saves_tasks(self, ontology):
        # Clear-cut supports should need far fewer than max_sample
        # members per fact-set.
        engine = make_engine(ontology, dietician_truth(),
                             max_sample=60)
        result = engine.evaluate(parse_oassisql(self.QUERY))
        per_fact_set = result.tasks_used / max(result.where_bindings, 1)
        assert per_fact_set < 60

    def test_higher_threshold_accepts_fewer(self, ontology):
        low = make_engine(ontology, dietician_truth())
        high = make_engine(ontology, dietician_truth())
        query_low = parse_oassisql(self.QUERY)
        query_high = parse_oassisql(
            self.QUERY.replace("0.1", "0.5")
        )
        assert len(high.evaluate(query_high).accepted) <= len(
            low.evaluate(query_low).accepted
        )


class TestTopKClauses:
    QUERY = """\
SELECT VARIABLES
WHERE
{$x instanceOf Hotel.
$x locatedIn Las_Vegas.
$x hasAttraction $y.
$y instanceOf ThrillRide}
SATISFYING
{$y hasLabel "good"}
ORDER BY DESC(SUPPORT)
LIMIT 2"""

    def test_top2_rides(self, ontology):
        engine = make_engine(ontology, vegas_rides_truth())
        result = engine.evaluate(parse_oassisql(self.QUERY))
        top = {o.binding["y"].local_name for o in result.accepted}
        assert top == {"Big_Shot", "Big_Apple_Coaster"}

    def test_bottom_k(self, ontology):
        engine = make_engine(ontology, vegas_rides_truth())
        query = parse_oassisql(
            self.QUERY.replace("DESC", "ASC").replace("LIMIT 2",
                                                      "LIMIT 1")
        )
        result = engine.evaluate(query)
        bottom = {o.binding["y"].local_name for o in result.accepted}
        assert bottom == {"Adventuredome_Canyon_Blaster"}

    def test_shared_fact_sets_estimated_once(self, ontology):
        engine = make_engine(ontology, vegas_rides_truth(),
                             topk_sample=10)
        result = engine.evaluate(parse_oassisql(self.QUERY))
        # 4 distinct rides x 10 samples.
        assert result.tasks_used == 40


class TestEngineEdgeCases:
    def test_no_where_matches(self, ontology):
        engine = make_engine(ontology, GroundTruth())
        query = parse_oassisql(
            "SELECT VARIABLES\nWHERE\n{$x instanceOf Spaceship}\n"
            "SATISFYING\n{[] fly $x}\nWITH SUPPORT THRESHOLD = 0.1"
        )
        result = engine.evaluate(query)
        assert result.accepted == []
        assert result.tasks_used == 0

    def test_satisfying_only_query(self, ontology):
        truth = GroundTruth(default=0.9)
        engine = make_engine(ontology, truth)
        query = parse_oassisql(
            "SELECT VARIABLES\nSATISFYING\n{[] visit Delaware_Park}\n"
            "WITH SUPPORT THRESHOLD = 0.5"
        )
        result = engine.evaluate(query)
        assert len(result.accepted) == 1

    def test_open_variable_with_empty_world_yields_nothing(self,
                                                           ontology):
        engine = make_engine(ontology, GroundTruth())
        query = parse_oassisql(
            "SELECT VARIABLES\nSATISFYING\n{[] visit $q}\n"
            "WITH SUPPORT THRESHOLD = 0.1"
        )
        result = engine.evaluate(query)
        assert result.accepted == []

    def test_open_pattern_mined_from_crowd(self, ontology):
        # "$q" occurs only in SATISFYING: the crowd instantiates it.
        engine = make_engine(ontology, buffalo_travel_truth())
        query = parse_oassisql(
            "SELECT VARIABLES\nSATISFYING\n{[] visit $q.\n[] in Fall}\n"
            "WITH SUPPORT THRESHOLD = 0.3"
        )
        result = engine.evaluate(query)
        mined = {o.binding["q"].local_name for o in result.accepted}
        assert mined == {"Delaware_Park", "Buffalo_Zoo",
                         "Albright_Knox_Art_Gallery"}

    def test_open_pattern_topk(self, ontology):
        engine = make_engine(ontology, buffalo_travel_truth())
        query = parse_oassisql(
            "SELECT VARIABLES\nSATISFYING\n"
            "{$q hasLabel \"interesting\"}\n"
            "ORDER BY DESC(SUPPORT)\nLIMIT 1"
        )
        result = engine.evaluate(query)
        assert [o.binding["q"].local_name for o in result.accepted] == [
            "Delaware_Park"
        ]

    def test_anything_in_where_raises(self, ontology):
        engine = make_engine(ontology, GroundTruth())
        query = parse_oassisql(
            "SELECT VARIABLES\nWHERE\n{[] instanceOf Place}\n"
            "SATISFYING\n{[] visit Delaware_Park}\n"
            "WITH SUPPORT THRESHOLD = 0.1"
        )
        with pytest.raises(EngineError):
            engine.evaluate(query)

    def test_budget_exhaustion(self, ontology):
        engine = make_engine(ontology, buffalo_travel_truth(),
                             task_budget=10)
        with pytest.raises(BudgetExhausted) as err:
            engine.evaluate(parse_oassisql(FIGURE1))
        assert err.value.tasks_used == 10

    def test_noise_degrades_gracefully(self, ontology):
        # Even at high noise the top place should usually stay on top.
        engine = make_engine(ontology, buffalo_travel_truth(),
                             noise=0.25, size=300, seed=5)
        result = engine.evaluate(parse_oassisql(FIGURE1))
        ranked = [b["x"].local_name for b in result.bindings()]
        assert "Delaware_Park" in ranked[:2]


class TestPlannerModes:
    """planner="cost" must be invisible in the engine's results."""

    def canon(self, result):
        return sorted(
            (
                tuple(sorted(
                    (k, str(v)) for k, v in o.binding.items()
                )),
                tuple(sorted(o.supports.items())),
                o.accepted,
            )
            for o in result.outcomes
        )

    def test_cost_and_greedy_agree_on_figure1(self, ontology):
        query = parse_oassisql(FIGURE1)
        results = {}
        for mode in ("greedy", "cost"):
            crowd = SimulatedCrowd(
                buffalo_travel_truth(), size=120, noise=0.08, seed=11
            )
            engine = OassisEngine(
                ontology, crowd, EngineConfig(), planner=mode
            )
            results[mode] = engine.evaluate(query)
        greedy, cost = results["greedy"], results["cost"]
        assert greedy.where_bindings == cost.where_bindings
        assert greedy.tasks_used == cost.tasks_used
        assert self.canon(greedy) == self.canon(cost)
        assert (
            sorted(map(str, greedy.bindings()))
            == sorted(map(str, cost.bindings()))
        )

    def test_dedicated_planner_records_cache_traffic(self, ontology):
        from repro.rdf.planner import QueryPlanner

        planner = QueryPlanner()
        engine = make_engine(ontology, buffalo_travel_truth())
        engine.planner = planner
        query = parse_oassisql(FIGURE1)
        engine.evaluate(query)
        engine.evaluate(query)
        snap = planner.snapshot()
        assert snap.misses == 1
        assert snap.hits == 1

    def test_unknown_planner_mode_rejected(self, ontology):
        crowd = SimulatedCrowd(buffalo_travel_truth(), size=10)
        with pytest.raises(ValueError):
            OassisEngine(ontology, crowd, planner="bogus")
