"""Engine configuration and statistics edge cases."""

import pytest

from repro.crowd.model import GroundTruth
from repro.crowd.scenarios import buffalo_travel_truth, habit_fact_set
from repro.crowd.simulator import SimulatedCrowd
from repro.data.ontologies import load_merged_ontology
from repro.oassis.engine import EngineConfig, OassisEngine
from repro.oassisql import parse_oassisql
from repro.rdf.ontology import KB


@pytest.fixture(scope="module")
def ontology():
    return load_merged_ontology()


THRESHOLD_QUERY = """\
SELECT VARIABLES
WHERE
{$x instanceOf Place.
$x near Forest_Hotel,_Buffalo,_NY}
SATISFYING
{[] visit $x.
[] in Fall}
WITH SUPPORT THRESHOLD = 0.1"""


def engine_for(ontology, **config):
    crowd = SimulatedCrowd(buffalo_travel_truth(), size=80, noise=0.05,
                           seed=2)
    return OassisEngine(ontology, crowd, EngineConfig(**config))


class TestSequentialTest:
    def test_min_sample_floor(self, ontology):
        # With min_sample == max_sample the test degenerates to a fixed
        # sample; every fact-set costs exactly that many tasks.
        engine = engine_for(ontology, min_sample=10, max_sample=10)
        result = engine.evaluate(parse_oassisql(THRESHOLD_QUERY))
        assert result.tasks_used == result.where_bindings * 10

    def test_wider_confidence_asks_more(self, ontology):
        narrow = engine_for(ontology, confidence_z=1.0)
        wide = engine_for(ontology, confidence_z=3.0)
        query = parse_oassisql(THRESHOLD_QUERY)
        tasks_narrow = narrow.evaluate(query).tasks_used
        tasks_wide = wide.evaluate(query).tasks_used
        assert tasks_wide >= tasks_narrow

    def test_sample_capped_by_crowd_size(self, ontology):
        truth = GroundTruth(default=0.1)  # right at the threshold
        crowd = SimulatedCrowd(truth, size=5, noise=0.3, seed=1)
        engine = OassisEngine(
            ontology, crowd, EngineConfig(max_sample=1000)
        )
        query = parse_oassisql(
            "SELECT VARIABLES\nSATISFYING\n{[] visit Delaware_Park}\n"
            "WITH SUPPORT THRESHOLD = 0.1"
        )
        result = engine.evaluate(query)
        # Never more tasks than members for a single fact-set.
        assert result.tasks_used <= 5


class TestOutcomeReporting:
    def test_rejected_outcomes_keep_supports(self, ontology):
        engine = engine_for(ontology)
        result = engine.evaluate(parse_oassisql(THRESHOLD_QUERY))
        rejected = [o for o in result.outcomes if not o.accepted]
        assert rejected
        assert all(0 in o.supports for o in rejected)

    def test_support_of_accessor(self, ontology):
        engine = engine_for(ontology)
        result = engine.evaluate(parse_oassisql(THRESHOLD_QUERY))
        outcome = result.accepted[0]
        assert outcome.support_of(0) == outcome.supports[0]

    def test_task_answers_recorded(self, ontology):
        engine = engine_for(ontology)
        result = engine.evaluate(parse_oassisql(THRESHOLD_QUERY))
        for task in result.tasks:
            assert 0.0 <= task.answer <= 1.0
            assert task.question.endswith("?")

    def test_estimates_close_to_truth(self, ontology):
        engine = engine_for(ontology, min_sample=30, max_sample=30)
        result = engine.evaluate(parse_oassisql(THRESHOLD_QUERY))
        truth = buffalo_travel_truth()
        for outcome in result.accepted:
            place = outcome.binding["x"]
            true_support = truth.support(
                habit_fact_set("visit", place, ("in", KB.Fall))
            )
            assert abs(outcome.supports[0] - true_support) < 0.12
