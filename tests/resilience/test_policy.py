"""RetryPolicy and Deadline: deterministic, never actually sleeping."""

import pytest

from repro.errors import DeadlineExceeded, InteractionRequired, ReproError
from repro.resilience import Deadline, RetryPolicy, seeded_uniform


class FakeClock:
    """A manually-advanced monotonic clock."""

    def __init__(self, now: float = 100.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestSeededUniform:
    def test_in_unit_interval(self):
        for i in range(200):
            u = seeded_uniform("key", i)
            assert 0.0 <= u < 1.0

    def test_deterministic(self):
        assert seeded_uniform(7, "q", 3) == seeded_uniform(7, "q", 3)

    def test_key_sensitive(self):
        draws = {seeded_uniform("k", i) for i in range(50)}
        assert len(draws) == 50


class TestDeadline:
    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            Deadline(-0.1)

    def test_remaining_counts_down(self):
        clock = FakeClock()
        d = Deadline(2.0, clock=clock)
        assert d.remaining() == pytest.approx(2.0)
        clock.advance(1.5)
        assert d.remaining() == pytest.approx(0.5)
        assert not d.expired
        clock.advance(1.0)
        assert d.expired

    def test_check_passes_within_budget(self):
        d = Deadline(60.0, clock=FakeClock())
        d.check("nl-parsing")  # no raise

    def test_check_raises_typed_error_with_context(self):
        clock = FakeClock()
        d = Deadline(0.25, clock=clock)
        clock.advance(0.4)
        with pytest.raises(DeadlineExceeded) as exc_info:
            d.check("ix-detection")
        err = exc_info.value
        assert isinstance(err, ReproError)
        assert err.stage == "ix-detection"
        assert err.budget == pytest.approx(0.25)
        assert err.elapsed == pytest.approx(0.4)
        assert "ix-detection" in str(err)

    def test_after_classmethod(self):
        clock = FakeClock()
        d = Deadline.after(1.0, clock=clock)
        assert d.budget == 1.0


class TestRetryPolicyValidation:
    @pytest.mark.parametrize("kwargs", [
        dict(retries=-1),
        dict(base_delay=-0.1),
        dict(max_delay=-1.0),
        dict(multiplier=0.5),
        dict(jitter=1.5),
        dict(jitter=-0.1),
    ])
    def test_bad_arguments_rejected(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)


class TestBackoffSchedule:
    def test_without_jitter_pure_exponential(self):
        policy = RetryPolicy(
            retries=4, base_delay=0.1, multiplier=2.0,
            max_delay=0.5, jitter=0.0,
        )
        assert policy.delays() == pytest.approx([0.1, 0.2, 0.4, 0.5])

    def test_jitter_shrinks_but_never_grows_the_pause(self):
        policy = RetryPolicy(
            retries=6, base_delay=0.1, multiplier=2.0,
            max_delay=10.0, jitter=0.5, seed=3,
        )
        for attempt in range(6):
            raw = min(10.0, 0.1 * 2.0 ** attempt)
            d = policy.delay(attempt, key="q")
            assert raw * 0.5 <= d <= raw

    def test_schedule_is_seed_deterministic(self):
        a = RetryPolicy(seed=7).delays(key="same question")
        b = RetryPolicy(seed=7).delays(key="same question")
        c = RetryPolicy(seed=8).delays(key="same question")
        assert a == b
        assert a != c


class TestRun:
    def make_policy(self, **kwargs):
        sleeps: list[float] = []
        kwargs.setdefault("base_delay", 0.05)
        kwargs.setdefault("retries", 3)
        policy = RetryPolicy(sleep=sleeps.append, **kwargs)
        return policy, sleeps

    def test_returns_first_success(self):
        policy, sleeps = self.make_policy()
        assert policy.run(lambda: 42) == 42
        assert sleeps == []

    def test_retries_transient_failures(self):
        policy, sleeps = self.make_policy()
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise ConnectionError("transient")
            return "ok"

        assert policy.run(flaky, key="q") == "ok"
        assert calls["n"] == 3
        assert sleeps == policy.delays(key="q")[:2]

    def test_non_retryable_raises_immediately(self):
        policy, sleeps = self.make_policy()
        calls = {"n": 0}

        def broken():
            calls["n"] += 1
            raise KeyError("programming bug")

        with pytest.raises(KeyError):
            policy.run(broken)
        assert calls["n"] == 1
        assert sleeps == []

    def test_exhaustion_reraises_last_error(self):
        policy, sleeps = self.make_policy(retries=2)

        def always():
            raise InteractionRequired("never answered")

        with pytest.raises(InteractionRequired):
            policy.run(always)
        assert len(sleeps) == 2

    def test_expired_deadline_stops_retrying(self):
        clock = FakeClock()
        policy, sleeps = self.make_policy(clock=clock)
        deadline = Deadline(1.0, clock=clock)
        clock.advance(2.0)

        def always():
            raise TimeoutError("slow")

        with pytest.raises(TimeoutError):
            policy.run(always, deadline=deadline)
        assert sleeps == []

    def test_pause_clamped_to_deadline(self):
        clock = FakeClock()
        policy, sleeps = self.make_policy(
            clock=clock, base_delay=10.0, jitter=0.0, retries=1,
        )
        deadline = Deadline(0.5, clock=clock)

        calls = {"n": 0}

        def once_flaky():
            calls["n"] += 1
            if calls["n"] == 1:
                raise ConnectionError("transient")
            return "ok"

        assert policy.run(once_flaky, deadline=deadline) == "ok"
        assert sleeps == [pytest.approx(0.5)]

    def test_on_retry_hook_sees_attempt_and_error(self):
        policy, _ = self.make_policy(retries=2)
        seen: list[tuple[int, str]] = []
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise ConnectionError(f"fail {calls['n']}")
            return "ok"

        policy.run(
            flaky,
            on_retry=lambda a, e: seen.append((a, str(e))),
        )
        assert seen == [(0, "fail 1"), (1, "fail 2")]
