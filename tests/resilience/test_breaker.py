"""CircuitBreaker state machine, driven by a fake clock."""

import threading

import pytest

from repro.errors import CircuitOpenError
from repro.resilience import CircuitBreaker


class FakeClock:
    def __init__(self, now: float = 0.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def make(threshold=3, recovery=10.0, **kwargs):
    clock = FakeClock()
    breaker = CircuitBreaker(
        failure_threshold=threshold,
        recovery_seconds=recovery,
        clock=clock,
        **kwargs,
    )
    return breaker, clock


class TestValidation:
    @pytest.mark.parametrize("kwargs", [
        dict(failure_threshold=0),
        dict(recovery_seconds=-1.0),
        dict(half_open_max=0),
    ])
    def test_bad_arguments_rejected(self, kwargs):
        with pytest.raises(ValueError):
            CircuitBreaker(**kwargs)


class TestStateMachine:
    def test_starts_closed_and_allows(self):
        breaker, _ = make()
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.allow()
        assert breaker.state_code() == 0.0

    def test_opens_after_consecutive_failures(self):
        breaker, _ = make(threshold=3)
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        assert breaker.opens == 1
        assert not breaker.allow()
        assert breaker.rejections == 1
        assert breaker.state_code() == 2.0

    def test_success_resets_the_failure_count(self):
        breaker, _ = make(threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED

    def test_half_open_after_recovery_window(self):
        breaker, clock = make(threshold=1, recovery=10.0)
        breaker.record_failure()
        assert not breaker.allow()
        clock.advance(10.0)
        assert breaker.state == CircuitBreaker.HALF_OPEN
        assert breaker.state_code() == 1.0

    def test_half_open_admits_one_probe(self):
        breaker, clock = make(threshold=1, recovery=10.0)
        breaker.record_failure()
        clock.advance(10.0)
        assert breaker.allow()       # the probe
        assert not breaker.allow()   # everyone else still rejected

    def test_probe_success_closes(self):
        breaker, clock = make(threshold=1, recovery=10.0)
        breaker.record_failure()
        clock.advance(10.0)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.allow()

    def test_probe_failure_reopens_for_another_window(self):
        breaker, clock = make(threshold=5, recovery=10.0)
        for _ in range(5):
            breaker.record_failure()
        clock.advance(10.0)
        assert breaker.allow()
        breaker.record_failure()  # one half-open failure is enough
        assert breaker.state == CircuitBreaker.OPEN
        assert breaker.opens == 2
        clock.advance(5.0)
        assert not breaker.allow()
        clock.advance(5.0)
        assert breaker.allow()


class TestCall:
    def test_call_passes_through_and_closes(self):
        breaker, _ = make(threshold=1)
        assert breaker.call(lambda: "value") == "value"

    def test_call_records_failures_and_opens(self):
        breaker, _ = make(threshold=1)
        with pytest.raises(RuntimeError):
            breaker.call(self._boom)
        with pytest.raises(CircuitOpenError):
            breaker.call(lambda: "never reached")

    @staticmethod
    def _boom():
        raise RuntimeError("down")


class TestThreadSafety:
    def test_concurrent_failures_count_exactly(self):
        breaker, _ = make(threshold=10_000)
        threads = [
            threading.Thread(
                target=lambda: [breaker.record_failure()
                                for _ in range(500)]
            )
            for _ in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert breaker._failures == 4000
        assert breaker.state == CircuitBreaker.CLOSED
