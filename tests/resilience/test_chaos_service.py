"""Chaos suite: the serving layer under injected provider failures.

The headline scenario from the acceptance bar: a 50-question batch at a
30% injected interaction-failure rate with ``retries=3`` must come back
with every :class:`BatchItem` either ok, degraded-but-ok, or carrying a
typed error — none lost — while the outcome identity ::

    requests == translated + served_from_cache + deduplicated + errors

holds in *every* stats snapshot an observer thread can take, and the
whole run is bit-reproducible for a fixed seed.
"""

import threading

import pytest

from repro.core.pipeline import NL2CM
from repro.data.corpus import CORPUS
from repro.data.ontologies import load_merged_ontology
from repro.errors import (
    InjectedFault,
    InteractionRequired,
    ReproError,
    UnexpectedTranslationError,
)
from repro.resilience import FaultPlan, ResilienceConfig
from repro.service import TranslationService
from repro.ui.interaction import ScriptedInteraction

#: Threshold-only questions (each asks exactly one ThresholdRequest),
#: so a scripted float answer is always type-correct.
THRESHOLD_QUESTIONS = [
    "Where do you go hiking in the winter?",
    "Which museums are popular with locals?",
    "Which hotel in Vegas should we stay at?",
    "Do you like the Buffalo Zoo?",
    "Is the Eiffel Tower beautiful in the winter?",
    "Which beaches are good for families?",
]


@pytest.fixture(scope="module")
def ontology():
    return load_merged_ontology()


def chaos_questions() -> list[str]:
    questions = [e.text for e in CORPUS if e.supported]
    questions.append(questions[0])  # one duplicate: dedup under chaos
    assert len(questions) == 50
    return questions


def chaos_config(**overrides) -> ResilienceConfig:
    # breaker_threshold=0 keeps the run schedule-independent: a shared
    # breaker couples requests across threads (by design), which is
    # exercised separately below.
    defaults = dict(
        retries=3,
        faults=FaultPlan(rate=0.3, seed=7),
        breaker_threshold=0,
        sleep=lambda s: None,
    )
    defaults.update(overrides)
    return ResilienceConfig(**defaults)


class IdentityObserver:
    """Samples stats() concurrently, recording identity violations."""

    def __init__(self, service: TranslationService):
        self.service = service
        self.violations: list[tuple[int, int]] = []
        self.samples = 0
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self):
        while not self._stop.is_set():
            stats = self.service.stats()
            self.samples += 1
            if stats.requests != stats.accounted:
                self.violations.append(
                    (stats.requests, stats.accounted)
                )

    def __enter__(self):
        self._thread.start()
        return self

    def __exit__(self, *exc):
        self._stop.set()
        self._thread.join(timeout=10)


def run_chaos_batch(ontology, workers=4):
    service = TranslationService(
        NL2CM(ontology=ontology),
        workers=workers,
        resilience=chaos_config(),
    )
    with IdentityObserver(service) as observer:
        items = service.translate_batch(chaos_questions())
    return service, items, observer


class TestChaosHeadline:
    def test_no_item_lost_and_identity_holds(self, ontology):
        service, items, observer = run_chaos_batch(ontology)

        assert len(items) == 50
        for item in items:
            # Exactly one of result/error, i.e. nothing silently lost.
            assert (item.result is None) != (item.error is None)
            if item.error is not None:
                assert isinstance(item.error, ReproError)
            if item.degraded:
                assert item.ok

        stats = service.stats()
        assert stats.requests == 50
        assert stats.requests == stats.accounted
        assert observer.samples > 0
        assert observer.violations == []

        # The 30% fault rate actually bit: retries happened, and the
        # degraded counter agrees with the items.
        assert stats.retries > 0
        assert stats.degraded == sum(
            1 for item in items
            if item.degraded and not item.cached
        )

    def test_bit_reproducible_for_fixed_seed(self, ontology):
        def signature(items):
            return [
                (
                    item.ok,
                    item.degraded,
                    item.query_text,
                    type(item.error).__name__ if item.error else None,
                )
                for item in items
            ]

        _, first, _ = run_chaos_batch(ontology, workers=4)
        _, second, _ = run_chaos_batch(ontology, workers=2)
        # Same seed, different thread counts: byte-identical outcomes.
        assert signature(first) == signature(second)


class TestDegradationOff:
    def test_exhausted_faults_surface_as_typed_errors(self, ontology):
        service = TranslationService(
            NL2CM(ontology=ontology),
            workers=2,
            resilience=chaos_config(
                retries=1, degrade=False,
                faults=FaultPlan(rate=1.0),
            ),
        )
        items = service.translate_batch(THRESHOLD_QUESTIONS[:3])
        assert all(
            isinstance(item.error, InjectedFault) for item in items
        )
        stats = service.stats()
        assert stats.errors == 3
        assert stats.requests == stats.accounted == 3
        assert stats.degraded == 0

    def test_degraded_results_are_never_cached(self, ontology):
        service = TranslationService(
            NL2CM(ontology=ontology),
            resilience=chaos_config(faults=FaultPlan(rate=1.0)),
        )
        question = THRESHOLD_QUESTIONS[0]
        first = service.translate(question)
        assert first.trace.degraded
        second = service.translate(question)
        assert second.trace.degraded
        stats = service.stats()
        # Both runs were fresh translations; nothing was served from
        # the cache because a degraded result must not be cached.
        assert stats.translated == 2
        assert stats.served_from_cache == 0
        assert stats.degraded == 2
        assert service.cache.stats().insertions == 0


class TestForeignErrorFaults:
    def test_runtime_faults_degrade_gracefully(self, ontology):
        # RuntimeError is not retryable: the wrapper degrades at once
        # rather than burning retries on a programming error.
        service = TranslationService(
            NL2CM(ontology=ontology),
            resilience=chaos_config(
                faults=FaultPlan(rate=1.0, error_type=RuntimeError),
            ),
        )
        items = service.translate_batch(THRESHOLD_QUESTIONS[:2])
        assert all(item.ok and item.degraded for item in items)
        stats = service.stats()
        assert stats.retries == 0
        assert stats.requests == stats.accounted

    def test_runtime_faults_without_resilience_stay_typed(self, ontology):
        # No resilience layer at all: the injected RuntimeError escapes
        # the translator, and the batch wraps it per-item instead of
        # letting it poison the executor.
        from repro.resilience import FlakyInteraction
        from repro.ui.interaction import AutoInteraction

        provider = FlakyInteraction(
            AutoInteraction(),
            FaultPlan(rate=1.0, error_type=RuntimeError),
        )
        service = TranslationService(NL2CM(ontology=ontology))
        items = service.translate_batch(
            THRESHOLD_QUESTIONS[:2], interaction=provider,
        )
        assert all(
            isinstance(item.error, UnexpectedTranslationError)
            for item in items
        )
        stats = service.stats()
        assert stats.errors == 2
        assert stats.requests == stats.accounted == 2
        # The pool is not poisoned: the same service still serves.
        follow_up = service.translate_batch([THRESHOLD_QUESTIONS[0]])
        assert follow_up[0].ok


class TestBreakerIntegration:
    def test_breaker_opens_and_requests_degrade_fast(self, ontology):
        service = TranslationService(
            NL2CM(ontology=ontology),
            workers=1,  # sequential: breaker transitions deterministic
            resilience=chaos_config(
                retries=1,
                breaker_threshold=2,
                breaker_recovery_ms=3_600_000.0,
                faults=FaultPlan(rate=1.0),
            ),
        )
        items = service.translate_batch(THRESHOLD_QUESTIONS)
        assert all(item.ok and item.degraded for item in items)
        stats = service.stats()
        assert stats.breaker_rejections > 0
        assert stats.requests == stats.accounted
        assert service._r_breaker.state == "open"
        assert "nl2cm_breaker_state 2" in service.registry.expose()


class TestScriptExhaustionUnderBatch:
    def test_strict_script_exhausts_with_typed_errors(self, ontology):
        script = ScriptedInteraction([0.2, 0.3], strict=True)
        service = TranslationService(NL2CM(ontology=ontology), workers=4)
        items = service.translate_batch(
            THRESHOLD_QUESTIONS, interaction=script,
        )
        ok = [item for item in items if item.ok]
        failed = [item for item in items if not item.ok]
        # Each question asks exactly once, so exactly two answers land.
        assert len(ok) == 2
        assert len(failed) == 4
        assert all(
            isinstance(item.error, InteractionRequired)
            for item in failed
        )
        # Transcript is consistent: exactly the two scripted answers
        # were handed out, each to one request.
        assert [a for _, a in script.transcript] == [0.2, 0.3]
        stats = service.stats()
        assert stats.requests == stats.accounted == 6
        assert stats.errors == 4
