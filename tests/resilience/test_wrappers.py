"""ResilientInteraction / ResilientCrowd: retry, degrade, breaker."""

import pytest

from repro.errors import (
    CircuitOpenError,
    InjectedFault,
    ProviderFailure,
    ReproError,
)
from repro.resilience import (
    CircuitBreaker,
    FaultPlan,
    FlakyInteraction,
    ResilientCrowd,
    ResilientInteraction,
    RetryPolicy,
)
from repro.ui.interaction import AutoInteraction, LimitRequest


def quiet_policy(**kwargs):
    kwargs.setdefault("retries", 3)
    return RetryPolicy(sleep=lambda s: None, **kwargs)


def request():
    return LimitRequest(description="results")


class TestResilientInteraction:
    def test_healthy_provider_passes_through(self):
        guarded = ResilientInteraction(
            AutoInteraction(default_limit=9), policy=quiet_policy(),
            fallback=AutoInteraction(),
        )
        assert guarded.ask(request()) == 9
        assert not guarded.degraded
        assert guarded.retries == 0

    def test_transient_faults_are_retried_away(self):
        flaky = FlakyInteraction(
            AutoInteraction(default_limit=9),
            FaultPlan(fail_indices=frozenset({0, 1})),
        )
        retried = []
        guarded = ResilientInteraction(
            flaky, policy=quiet_policy(),
            fallback=AutoInteraction(),
            on_retry=lambda: retried.append(1),
        )
        assert guarded.ask(request()) == 9
        assert not guarded.degraded
        assert guarded.retries == 2
        assert len(retried) == 2

    def test_exhausted_retries_degrade_to_fallback(self):
        flaky = FlakyInteraction(AutoInteraction(), FaultPlan(rate=1.0))
        guarded = ResilientInteraction(
            flaky, policy=quiet_policy(retries=2),
            fallback=AutoInteraction(default_limit=77),
        )
        assert guarded.ask(request()) == 77
        assert guarded.degraded
        (event,) = guarded.events
        assert event.request == "LimitRequest"
        assert event.reason == "retries-exhausted"
        assert "InjectedFault" in event.error

    def test_non_retryable_error_degrades_immediately(self):
        flaky = FlakyInteraction(
            AutoInteraction(),
            FaultPlan(rate=1.0, error_type=RuntimeError),
        )
        guarded = ResilientInteraction(
            flaky, policy=quiet_policy(),
            fallback=AutoInteraction(default_limit=5),
        )
        assert guarded.ask(request()) == 5
        assert guarded.retries == 0
        assert guarded.degraded

    def test_without_fallback_library_error_reraises(self):
        flaky = FlakyInteraction(AutoInteraction(), FaultPlan(rate=1.0))
        guarded = ResilientInteraction(
            flaky, policy=quiet_policy(retries=1), fallback=None,
        )
        with pytest.raises(InjectedFault):
            guarded.ask(request())

    def test_without_fallback_foreign_error_wrapped(self):
        flaky = FlakyInteraction(
            AutoInteraction(),
            FaultPlan(rate=1.0, error_type=RuntimeError),
        )
        guarded = ResilientInteraction(
            flaky, policy=quiet_policy(), fallback=None,
        )
        with pytest.raises(ProviderFailure) as exc_info:
            guarded.ask(request())
        assert isinstance(exc_info.value, ReproError)

    def test_open_breaker_degrades_without_touching_provider(self):
        class Exploding:
            def ask(self, request):  # pragma: no cover - must not run
                raise AssertionError("provider touched behind open breaker")

        breaker = CircuitBreaker(failure_threshold=1)
        breaker.record_failure()
        rejected = []
        guarded = ResilientInteraction(
            Exploding(), policy=quiet_policy(),
            breaker=breaker,
            fallback=AutoInteraction(default_limit=5),
            on_rejected=lambda: rejected.append(1),
        )
        assert guarded.ask(request()) == 5
        (event,) = guarded.events
        assert event.reason == "circuit-open"
        assert event.error is None
        assert rejected == [1]

    def test_open_breaker_without_fallback_raises_typed(self):
        breaker = CircuitBreaker(failure_threshold=1)
        breaker.record_failure()
        guarded = ResilientInteraction(
            AutoInteraction(), policy=quiet_policy(),
            breaker=breaker, fallback=None,
        )
        with pytest.raises(CircuitOpenError):
            guarded.ask(request())

    def test_failures_feed_the_shared_breaker(self):
        breaker = CircuitBreaker(failure_threshold=2)
        flaky = FlakyInteraction(AutoInteraction(), FaultPlan(rate=1.0))
        guarded = ResilientInteraction(
            flaky, policy=quiet_policy(retries=5),
            breaker=breaker, fallback=AutoInteraction(),
        )
        guarded.ask(request())
        assert breaker.state == CircuitBreaker.OPEN

    def test_no_cache_fingerprint_by_design(self):
        guarded = ResilientInteraction(
            AutoInteraction(), policy=quiet_policy(),
            fallback=AutoInteraction(),
        )
        assert not hasattr(guarded, "cache_fingerprint")


class FakeMember:
    def __init__(self, member_id):
        self.member_id = member_id


class FakeFactSet:
    def key(self):
        return "fs"


class TestResilientCrowd:
    def test_retries_then_succeeds(self):
        class Flaky:
            size = 10

            def __init__(self):
                self.calls = 0

            def ask(self, member, fact_set):
                self.calls += 1
                if self.calls < 3:
                    raise ConnectionError("transient")
                return 0.4

        inner = Flaky()
        crowd = ResilientCrowd(inner, policy=quiet_policy())
        assert crowd.ask(FakeMember(1), FakeFactSet()) == 0.4
        assert inner.calls == 3
        assert crowd.retries == 2
        assert crowd.size == 10  # delegation

    def test_open_breaker_raises_without_asking(self):
        breaker = CircuitBreaker(failure_threshold=1)
        breaker.record_failure()

        class Exploding:
            def ask(self, member, fact_set):  # pragma: no cover
                raise AssertionError("crowd touched behind open breaker")

        crowd = ResilientCrowd(
            Exploding(), policy=quiet_policy(), breaker=breaker,
        )
        with pytest.raises(CircuitOpenError):
            crowd.ask(FakeMember(1), FakeFactSet())

    def test_exhausted_foreign_error_wrapped_as_provider_failure(self):
        class Broken:
            def ask(self, member, fact_set):
                raise ConnectionError("down for good")

        crowd = ResilientCrowd(Broken(), policy=quiet_policy(retries=1))
        with pytest.raises(ProviderFailure):
            crowd.ask(FakeMember(1), FakeFactSet())

    def test_library_error_passes_through_unwrapped(self):
        class Refusing:
            def ask(self, member, fact_set):
                raise InjectedFault("scripted")

        crowd = ResilientCrowd(Refusing(), policy=quiet_policy(retries=1))
        with pytest.raises(InjectedFault):
            crowd.ask(FakeMember(1), FakeFactSet())
