"""Per-stage deadlines wired through the translation pipeline."""

import pytest

from repro.core.pipeline import NL2CM
from repro.errors import DeadlineExceeded, ReproError

QUESTION = "Where do you go hiking in the winter?"


@pytest.fixture(scope="module")
def nl2cm_factory():
    # One ontology load for the whole module; NL2CM construction is the
    # expensive part and the translator itself is stateless per request.
    from repro.data.ontologies import load_merged_ontology

    ontology = load_merged_ontology()

    def make(**kwargs):
        return NL2CM(ontology=ontology, **kwargs)

    return make


class TestStageTimeoutConfig:
    def test_negative_timeout_rejected(self, nl2cm_factory):
        with pytest.raises(ValueError):
            nl2cm_factory(stage_timeout_ms=-5)

    def test_default_is_no_deadline(self, nl2cm_factory):
        nl2cm = nl2cm_factory()
        assert nl2cm.stage_timeout is None
        result = nl2cm.translate(QUESTION)
        assert result.query_text.startswith("SELECT")


class TestStageTimeoutEnforcement:
    def test_zero_budget_fails_the_first_stage(self, nl2cm_factory):
        nl2cm = nl2cm_factory(stage_timeout_ms=0)
        with pytest.raises(DeadlineExceeded) as exc_info:
            nl2cm.translate(QUESTION)
        err = exc_info.value
        assert isinstance(err, ReproError)
        assert err.stage == "verification"
        assert err.budget == 0.0

    def test_generous_budget_translates_normally(self, nl2cm_factory):
        with_deadline = nl2cm_factory(stage_timeout_ms=60_000)
        without = nl2cm_factory()
        a = with_deadline.translate(QUESTION)
        b = without.translate(QUESTION)
        assert a.query_text == b.query_text
        # The span tree is unchanged by deadline bookkeeping.
        assert a.trace.stages() == b.trace.stages()

    def test_overrunning_stage_names_itself(self, nl2cm_factory):
        # A budget small enough that *some* stage trips, large enough
        # that construction-time work does not matter: patch the clock
        # instead — deterministically expire during nl-parsing by
        # shrinking the budget to zero after the first stage passes.
        nl2cm = nl2cm_factory(stage_timeout_ms=0)
        with pytest.raises(DeadlineExceeded) as exc_info:
            nl2cm.translate(QUESTION)
        assert "deadline" in str(exc_info.value).lower()
