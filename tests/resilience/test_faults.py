"""The deterministic fault-injection harness."""

import pytest

from repro.errors import InjectedFault, ReproError
from repro.resilience import ChaosCrowd, FaultPlan, FlakyInteraction
from repro.ui.interaction import AutoInteraction, LimitRequest


class TestFaultPlan:
    def test_rate_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan(rate=1.5)
        with pytest.raises(ValueError):
            FaultPlan(rate=-0.1)

    def test_scheduled_indices_always_fail(self):
        plan = FaultPlan(fail_indices=frozenset({0, 2}))
        assert plan.should_fail(0)
        assert not plan.should_fail(1)
        assert plan.should_fail(2)

    def test_rate_zero_never_fails(self):
        plan = FaultPlan(rate=0.0)
        assert not any(
            plan.should_fail(i, key=("q", i)) for i in range(100)
        )

    def test_rate_one_always_fails(self):
        plan = FaultPlan(rate=1.0)
        assert all(
            plan.should_fail(i, key=("q", i)) for i in range(100)
        )

    def test_rate_decisions_are_seed_deterministic(self):
        a = FaultPlan(rate=0.3, seed=7)
        b = FaultPlan(rate=0.3, seed=7)
        c = FaultPlan(rate=0.3, seed=8)
        decisions_a = [a.should_fail(i, key=("q", i)) for i in range(200)]
        decisions_b = [b.should_fail(i, key=("q", i)) for i in range(200)]
        decisions_c = [c.should_fail(i, key=("q", i)) for i in range(200)]
        assert decisions_a == decisions_b
        assert decisions_a != decisions_c
        assert any(decisions_a) and not all(decisions_a)

    def test_make_error_uses_configured_type_and_message(self):
        plan = FaultPlan(error_type=TimeoutError, message="provider down")
        err = plan.make_error("call #3")
        assert isinstance(err, TimeoutError)
        assert "provider down" in str(err)
        assert "call #3" in str(err)


class TestFaultPlanParse:
    def test_rate_and_seed(self):
        plan = FaultPlan.parse("rate=0.3,seed=7")
        assert plan.rate == 0.3
        assert plan.seed == 7
        assert plan.error_type is InjectedFault

    def test_indices_and_error_type(self):
        plan = FaultPlan.parse("indices=0:2:5,error=runtime")
        assert plan.fail_indices == frozenset({0, 2, 5})
        assert plan.error_type is RuntimeError

    def test_message_and_blanks_tolerated(self):
        plan = FaultPlan.parse(" rate=0.1 , message=flaky network ")
        assert plan.rate == 0.1
        assert plan.message == "flaky network"

    @pytest.mark.parametrize("spec", [
        "rate",                  # not key=value
        "bogus=1",               # unknown key
        "error=nonsense",        # unknown error type
        "rate=lots",             # unparsable value
        "rate=2.0",              # out of range
    ])
    def test_malformed_specs_raise_value_error(self, spec):
        with pytest.raises(ValueError):
            FaultPlan.parse(spec)


class TestFlakyInteraction:
    def request(self):
        return LimitRequest(description="results")

    def test_scheduled_failures_then_delegate(self):
        flaky = FlakyInteraction(
            AutoInteraction(), FaultPlan(fail_indices=frozenset({0})),
        )
        with pytest.raises(InjectedFault):
            flaky.ask(self.request())
        assert flaky.ask(self.request()) == 5
        assert flaky.calls == 2
        assert flaky.failures == 1

    def test_injected_fault_is_a_library_error(self):
        flaky = FlakyInteraction(
            AutoInteraction(), FaultPlan(fail_indices=frozenset({0})),
        )
        with pytest.raises(ReproError):
            flaky.ask(self.request())

    def test_max_failures_caps_the_chaos(self):
        flaky = FlakyInteraction(
            AutoInteraction(), FaultPlan(rate=1.0), max_failures=2,
        )
        for _ in range(2):
            with pytest.raises(InjectedFault):
                flaky.ask(self.request())
        assert flaky.ask(self.request()) == 5

    def test_schedule_keyed_by_question_not_global_order(self):
        plan = FaultPlan(rate=0.5, seed=3)
        a1 = FlakyInteraction(AutoInteraction(), plan, key="question a")
        a2 = FlakyInteraction(AutoInteraction(), plan, key="question a")
        outcomes = []
        for flaky in (a1, a2):
            run = []
            for _ in range(20):
                try:
                    flaky.ask(self.request())
                    run.append(True)
                except InjectedFault:
                    run.append(False)
            outcomes.append(run)
        assert outcomes[0] == outcomes[1]


class FakeMember:
    def __init__(self, member_id):
        self.member_id = member_id


class FakeFactSet:
    def __init__(self, name):
        self.name = name

    def key(self):
        return self.name


class FakeCrowd:
    size = 11

    def __init__(self):
        self.asked = []

    def ask(self, member, fact_set):
        self.asked.append((member.member_id, fact_set.key()))
        return 0.5


class TestChaosCrowd:
    def test_scheduled_failure_then_delegate(self):
        chaos = ChaosCrowd(FakeCrowd(), FaultPlan(fail_indices=frozenset({0})))
        with pytest.raises(InjectedFault):
            chaos.ask(FakeMember(1), FakeFactSet("f"))
        assert chaos.ask(FakeMember(1), FakeFactSet("f")) == 0.5
        assert chaos.failures == 1
        assert chaos.calls == 2

    def test_retried_pair_draws_a_fresh_decision(self):
        # The rate draw is keyed by (member, fact-set, attempt): a pair
        # that fails on attempt 0 can succeed on a later attempt, so a
        # retry loop makes progress instead of spinning forever.
        plan = FaultPlan(rate=0.5, seed=0)
        chaos = ChaosCrowd(FakeCrowd(), plan)
        member, fs = FakeMember(3), FakeFactSet("hiking")
        outcomes = []
        for _ in range(16):
            try:
                chaos.ask(member, fs)
                outcomes.append(True)
            except InjectedFault:
                outcomes.append(False)
        assert True in outcomes and False in outcomes

    def test_schedule_reproduces_for_fixed_seed(self):
        def run():
            chaos = ChaosCrowd(FakeCrowd(), FaultPlan(rate=0.4, seed=9))
            out = []
            for m in range(5):
                for f in ("a", "b", "c"):
                    try:
                        chaos.ask(FakeMember(m), FakeFactSet(f))
                        out.append(True)
                    except InjectedFault:
                        out.append(False)
            return out

        assert run() == run()

    def test_delegates_everything_else(self):
        inner = FakeCrowd()
        chaos = ChaosCrowd(inner, FaultPlan())
        assert chaos.size == 11
        assert chaos.asked is inner.asked
