"""The stdlib /metrics endpoint, scraped over real HTTP."""

import urllib.error
import urllib.request

import pytest

from repro.obs import (
    MetricsRegistry,
    parse_prometheus_text,
    start_metrics_server,
)


@pytest.fixture
def served():
    registry = MetricsRegistry()
    registry.counter("up_total", "liveness").inc(7)
    server = start_metrics_server(registry, port=0)
    port = server.server_address[1]
    yield registry, f"http://127.0.0.1:{port}"
    server.shutdown()


class TestScrape:
    def test_metrics_endpoint_parses(self, served):
        registry, base = served
        with urllib.request.urlopen(f"{base}/metrics") as resp:
            assert resp.status == 200
            assert resp.headers["Content-Type"].startswith(
                "text/plain; version=0.0.4"
            )
            body = resp.read().decode("utf-8")
        parsed = parse_prometheus_text(body)
        assert parsed["up_total"]["samples"][("up_total", ())] == 7.0

    def test_scrape_sees_live_updates(self, served):
        registry, base = served
        registry.get("up_total").inc(3)
        with urllib.request.urlopen(f"{base}/metrics") as resp:
            body = resp.read().decode("utf-8")
        assert "up_total 10" in body

    def test_root_path_also_serves(self, served):
        _, base = served
        with urllib.request.urlopen(f"{base}/") as resp:
            assert resp.status == 200

    def test_other_paths_404(self, served):
        _, base = served
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(f"{base}/nope")
        assert err.value.code == 404
