"""Metrics registry: instrument semantics and exposition round-trips."""

import math
import threading

import pytest

from repro.errors import MetricsError
from repro.obs import (
    DEFAULT_LATENCY_BUCKETS,
    MetricsRegistry,
    parse_prometheus_text,
)


@pytest.fixture
def registry():
    return MetricsRegistry()


class TestCounter:
    def test_starts_at_zero_and_increments(self, registry):
        c = registry.counter("reqs_total", "requests")
        assert c.value() == 0.0
        c.inc()
        c.inc(2.5)
        assert c.value() == 3.5

    def test_negative_increment_rejected(self, registry):
        c = registry.counter("reqs_total", "requests")
        with pytest.raises(MetricsError, match="only increase"):
            c.inc(-1)

    def test_labeled_series_are_independent(self, registry):
        c = registry.counter("hits_total", "hits", labelnames=("kind",))
        c.labels(kind="a").inc()
        c.labels(kind="a").inc()
        c.labels(kind="b").inc()
        assert c.value(kind="a") == 2.0
        assert c.value(kind="b") == 1.0
        assert c.value(kind="never") == 0.0

    def test_labeled_family_rejects_bare_inc(self, registry):
        c = registry.counter("hits_total", "hits", labelnames=("kind",))
        with pytest.raises(MetricsError, match="use .labels"):
            c.inc()

    def test_wrong_label_names_rejected(self, registry):
        c = registry.counter("hits_total", "hits", labelnames=("kind",))
        with pytest.raises(MetricsError, match="takes labels"):
            c.labels(other="x")


class TestGauge:
    def test_set_inc_dec(self, registry):
        g = registry.gauge("depth", "queue depth")
        g.set(10)
        g.inc(5)
        g.dec(2)
        assert g.value() == 13.0

    def test_callback_gauge_reads_live_state(self, registry):
        state = {"n": 3}
        g = registry.gauge(
            "live", "live", callback=lambda: float(state["n"])
        )
        assert g.value() == 3.0
        state["n"] = 7
        assert g.value() == 7.0

    def test_callback_gauge_cannot_be_set(self, registry):
        g = registry.gauge("live", "live", callback=lambda: 1.0)
        with pytest.raises(MetricsError, match="cannot be set"):
            g.set(2)

    def test_callback_gauge_survives_reset(self, registry):
        g = registry.gauge("live", "live", callback=lambda: 4.0)
        plain = registry.gauge("plain", "plain")
        plain.set(9)
        registry.reset()
        assert g.value() == 4.0
        assert plain.value() == 0.0


class TestHistogram:
    def test_observe_updates_sum_and_count(self, registry):
        h = registry.histogram("lat", "latency")
        h.observe(0.002)
        h.observe(0.004)
        assert h.count() == 2
        assert h.sum() == pytest.approx(0.006)

    def test_buckets_are_cumulative_and_end_at_inf(self, registry):
        h = registry.histogram(
            "lat", "latency", buckets=(0.01, 0.1, 1.0)
        )
        for v in (0.005, 0.05, 0.05, 5.0):
            h.observe(v)
        pairs = h.labels().cumulative_counts()
        assert pairs == [(0.01, 1), (0.1, 3), (1.0, 3), (math.inf, 4)]

    def test_le_semantics_value_on_boundary(self, registry):
        h = registry.histogram("lat", "latency", buckets=(0.01, 0.1))
        h.observe(0.01)  # le="0.01" must include the boundary
        assert h.labels().cumulative_counts()[0] == (0.01, 1)

    def test_unsorted_buckets_rejected(self, registry):
        with pytest.raises(MetricsError, match="strictly increase"):
            registry.histogram("lat", "l", buckets=(0.1, 0.01))

    def test_quantile_interpolates(self, registry):
        h = registry.histogram("lat", "l", buckets=(1.0, 2.0, 4.0))
        for v in (0.5, 1.5, 1.5, 3.0):
            h.observe(v)
        assert 0.0 < h.labels().quantile(0.5) <= 2.0
        assert h.labels().quantile(0.0) == 0.0
        with pytest.raises(MetricsError):
            h.labels().quantile(1.5)

    def test_default_buckets_span_latency_range(self):
        assert DEFAULT_LATENCY_BUCKETS[0] == 0.0001
        assert DEFAULT_LATENCY_BUCKETS[-1] == 10.0
        assert list(DEFAULT_LATENCY_BUCKETS) == sorted(
            DEFAULT_LATENCY_BUCKETS
        )


class TestRegistry:
    def test_get_or_create_returns_same_family(self, registry):
        a = registry.counter("x_total", "x")
        b = registry.counter("x_total", "x")
        assert a is b
        assert len(registry) == 1

    def test_conflicting_reregistration_rejected(self, registry):
        registry.counter("x_total", "x")
        with pytest.raises(MetricsError, match="already registered"):
            registry.gauge("x_total", "x")
        with pytest.raises(MetricsError, match="already registered"):
            registry.counter("x_total", "x", labelnames=("l",))

    def test_invalid_names_rejected(self, registry):
        with pytest.raises(MetricsError, match="invalid metric name"):
            registry.counter("9bad", "x")
        with pytest.raises(MetricsError, match="invalid label name"):
            registry.counter("ok_total", "x", labelnames=("9bad",))

    def test_reset_zeroes_values_but_keeps_registrations(self, registry):
        c = registry.counter("x_total", "x")
        c.inc(5)
        registry.reset()
        assert c.value() == 0.0
        assert registry.get("x_total") is c


class TestExposition:
    def test_round_trip_through_parser(self, registry):
        c = registry.counter("reqs_total", "requests",
                             labelnames=("outcome",))
        c.labels(outcome="ok").inc(3)
        c.labels(outcome="error").inc()
        g = registry.gauge("depth", "queue depth")
        g.set(2.5)
        h = registry.histogram("lat_seconds", "latency",
                               buckets=(0.01, 0.1))
        h.observe(0.05)

        parsed = parse_prometheus_text(registry.expose())
        assert parsed["reqs_total"]["type"] == "counter"
        assert parsed["reqs_total"]["samples"][
            ("reqs_total", (("outcome", "ok"),))
        ] == 3.0
        assert parsed["depth"]["samples"][("depth", ())] == 2.5
        hist = parsed["lat_seconds"]
        assert hist["type"] == "histogram"
        assert hist["samples"][
            ("lat_seconds_bucket", (("le", "+Inf"),))
        ] == 1.0
        assert hist["samples"][
            ("lat_seconds_sum", ())
        ] == pytest.approx(0.05)
        assert hist["samples"][("lat_seconds_count", ())] == 1.0

    def test_label_values_escaped_and_restored(self, registry):
        c = registry.counter("odd_total", "odd", labelnames=("q",))
        tricky = 'a"b\\c\nd'
        c.labels(q=tricky).inc()
        parsed = parse_prometheus_text(registry.expose())
        assert parsed["odd_total"]["samples"][
            ("odd_total", (("q", tricky),))
        ] == 1.0

    def test_expose_ends_with_newline(self, registry):
        registry.counter("x_total", "x").inc()
        text = registry.expose()
        assert text.endswith("\n")
        assert registry.expose() if text else True

    def test_empty_registry_exposes_empty(self, registry):
        assert registry.expose() == ""

    def test_parser_rejects_malformed_lines(self):
        with pytest.raises(ValueError, match="malformed sample"):
            parse_prometheus_text("this is { not metrics")
        with pytest.raises(ValueError, match="malformed sample value"):
            parse_prometheus_text("x_total twelve")
        with pytest.raises(ValueError, match="unterminated"):
            parse_prometheus_text('x_total{l="oops} 1')


class TestThreadSafety:
    def test_concurrent_increments_do_not_lose_updates(self, registry):
        c = registry.counter("n_total", "n")
        h = registry.histogram("h_seconds", "h", buckets=(1.0,))

        def work():
            for _ in range(1000):
                c.inc()
                h.observe(0.5)

        threads = [threading.Thread(target=work) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value() == 8000.0
        assert h.count() == 8000
