"""Span recorder: tree structure, timing invariants, rendering."""

import time

import pytest

from repro.obs import SpanRecorder, new_request_id


@pytest.fixture
def tree():
    """root > (a > (a1, a2), b) with a tiny real sleep in a1."""
    rec = SpanRecorder()
    with rec.span("root"):
        with rec.span("a"):
            with rec.span("a1"):
                time.sleep(0.001)
            with rec.span("a2"):
                pass
        with rec.span("b"):
            pass
    return rec


class TestStructure:
    def test_parent_child_ids(self, tree):
        by_name = {s.name: s for s in tree.spans}
        assert by_name["root"].parent_id is None
        assert by_name["a"].parent_id == by_name["root"].span_id
        assert by_name["a1"].parent_id == by_name["a"].span_id
        assert by_name["b"].parent_id == by_name["root"].span_id

    def test_root_and_find(self, tree):
        assert tree.root.name == "root"
        assert tree.find("a2").name == "a2"
        assert tree.find("missing") is None

    def test_leaves(self, tree):
        assert {s.name for s in tree.leaves()} == {"a1", "a2", "b"}
        assert tree.is_leaf(tree.find("a1"))
        assert not tree.is_leaf(tree.find("a"))

    def test_request_ids_are_fresh_and_opaque(self):
        a, b = new_request_id(), new_request_id()
        assert a != b
        assert len(a) == 16
        assert SpanRecorder().request_id != SpanRecorder().request_id

    def test_span_ids_unique_across_recorders(self):
        r1, r2 = SpanRecorder(), SpanRecorder()
        with r1.span("x"), r2.span("y"):
            pass
        assert r1.spans[0].span_id != r2.spans[0].span_id


class TestTiming:
    def test_parent_covers_children(self, tree):
        root = tree.root
        for span in tree.spans[1:]:
            assert span.start >= root.start
            assert span.end <= root.end
        a = tree.find("a")
        assert a.elapsed >= (
            tree.find("a1").elapsed + tree.find("a2").elapsed
        )

    def test_self_times_tile_the_root(self, tree):
        total = sum(tree.self_seconds(s) for s in tree.spans)
        assert total == pytest.approx(tree.root.elapsed, rel=1e-9)

    def test_open_span_elapsed_grows(self):
        rec = SpanRecorder()
        span = rec.start_span("open")
        first = span.elapsed
        time.sleep(0.001)
        assert span.elapsed > first
        assert not span.finished
        rec.end_span(span)
        assert span.finished

    def test_mismatched_end_rejected(self):
        rec = SpanRecorder()
        outer = rec.start_span("outer")
        rec.start_span("inner")
        with pytest.raises(ValueError, match="not the innermost"):
            rec.end_span(outer)


class TestCompatShim:
    def test_add_records_finished_child(self):
        rec = SpanRecorder()
        with rec.span("root"):
            rec.add("stage", "artifact", 0.25)
        stage = rec.find("stage")
        assert stage.finished
        assert stage.parent_id == rec.root.span_id
        assert stage.elapsed == pytest.approx(0.25)
        assert stage.artifact == "artifact"


class TestRendering:
    def test_render_tree_indents_and_tags_request(self, tree):
        text = tree.render_tree()
        lines = text.splitlines()
        assert lines[0].startswith("root (")
        assert f"request={tree.request_id}" in lines[0]
        assert lines[1].startswith("  a (")
        assert lines[2].startswith("    a1 (")

    def test_span_render_shows_artifact(self, tree):
        root = tree.root
        root.artifact = "the question"
        block = root.render()
        assert block.startswith("== root (")
        assert block.endswith("the question")
