"""Slow-query log: threshold filtering and the bounded ring."""

import pytest

from repro.obs import SlowQueryLog, SpanRecorder


def trace_taking(seconds: float) -> SpanRecorder:
    rec = SpanRecorder()
    span = rec.start_span("translate")
    rec.end_span(span)
    span.end = span.start + seconds
    return rec


class TestThreshold:
    def test_fast_traces_skipped_slow_retained(self):
        log = SlowQueryLog(threshold_ms=50)
        assert not log.record("fast", trace_taking(0.001))
        assert log.record("slow", trace_taking(0.2))
        entries = log.entries()
        assert [e.text for e in entries] == ["slow"]
        assert entries[0].total_ms == pytest.approx(200, rel=1e-3)
        assert entries[0].request_id

    def test_threshold_zero_retains_everything(self):
        log = SlowQueryLog(threshold_ms=0)
        assert log.record("any", trace_taking(0.0001))

    def test_invalid_construction_rejected(self):
        with pytest.raises(ValueError):
            SlowQueryLog(threshold_ms=-1)
        with pytest.raises(ValueError):
            SlowQueryLog(threshold_ms=1, capacity=0)


class TestRing:
    def test_capacity_drops_oldest_but_seen_keeps_counting(self):
        log = SlowQueryLog(threshold_ms=0, capacity=2)
        for i in range(5):
            log.record(f"q{i}", trace_taking(0.01))
        assert [e.text for e in log.entries()] == ["q3", "q4"]
        assert log.seen == 5

    def test_clear_empties_the_ring(self):
        log = SlowQueryLog(threshold_ms=0)
        log.record("q", trace_taking(0.01))
        log.clear()
        assert log.entries() == []


class TestRendering:
    def test_render_contains_tree_and_request_id(self):
        log = SlowQueryLog(threshold_ms=0)
        trace = trace_taking(0.1)
        log.record("the question", trace)
        text = log.render()
        assert "slow-query log: 1 shown / 1 seen" in text
        assert "the question" in text
        assert f"request={trace.request_id}" in text
        assert "translate (" in text

    def test_empty_render(self):
        log = SlowQueryLog(threshold_ms=10)
        assert "empty" in log.render()
