"""Chaos tests with real worker processes (``spawn`` start method).

The satellite scenario: kill a worker mid-batch and require that the
front-end restarts it, the keyspace re-routes to the replacement, and
**every** request resolves — ok, degraded, or a typed error — with the
serving counter identity intact.  Plus deterministic fault injection
(the resilience layer's :class:`FaultPlan`) running *inside* spawned
workers.
"""

import threading
import time

import pytest

from repro.resilience import FaultPlan
from repro.serving import ShardManager, WorkerSpec

from tests.serving.conftest import SUPPORTED, UNSUPPORTED

pytestmark = pytest.mark.slow


@pytest.fixture()
def spawn_manager():
    manager = ShardManager(
        shards=2,
        spec=WorkerSpec(cache_size=16, debug_ops=True),
        start_method="spawn",
        connect_timeout=120.0,
    )
    yield manager
    manager.close()


class TestWorkerCrash:
    def test_kill_worker_mid_batch_everything_resolves(
        self, spawn_manager
    ):
        manager = spawn_manager
        questions = (SUPPORTED + [UNSUPPORTED]) * 4
        results = {}

        def run_batch():
            results["outcomes"] = manager.submit_batch(
                questions, timeout=120.0
            )

        victim = manager._handles[manager.route(SUPPORTED[0])]
        batch = threading.Thread(target=run_batch)
        batch.start()
        time.sleep(0.05)  # let the batch frames reach the workers
        victim.process.kill()
        batch.join(180.0)
        assert not batch.is_alive()

        outcomes = results["outcomes"]
        # Every request resolved: ok or a *typed* error, nothing hung,
        # nothing silently dropped.
        assert len(outcomes) == len(questions)
        for outcome in outcomes:
            assert outcome.ok or outcome.error_type, outcome
        # The keyspace re-routed onto a live replacement: the killed
        # shard answers again.
        follow_up = manager.submit(SUPPORTED[0], timeout=120.0)
        assert follow_up.ok
        assert follow_up.shard == victim.shard
        assert victim.restarts >= 1

        stats = manager.stats()
        assert stats.restarts >= 1
        assert stats.alive_shards == 2
        assert stats.requests == stats.accounted

    def test_kill_between_requests_restarts_transparently(
        self, spawn_manager
    ):
        manager = spawn_manager
        question = SUPPORTED[1]
        first = manager.submit(question, timeout=120.0)
        assert first.ok
        handle = manager._handles[first.shard]
        pid_before = handle.pid
        handle.process.kill()
        handle.process.join(30.0)
        # The crash is discovered on the next dispatch, the worker is
        # restarted in place, and the request is retried — the caller
        # only sees a slightly slower success.
        second = manager.submit(question, timeout=120.0)
        assert second.ok
        assert second.query == first.query
        assert handle.pid != pid_before
        assert handle.restarts >= 1
        assert manager.healthy()

    def test_health_reports_dead_worker(self, spawn_manager):
        manager = spawn_manager
        manager._handles[0].process.kill()
        manager._handles[0].process.join(30.0)
        report = manager.health()
        assert report[0]["alive"] is False
        assert report[1]["alive"] is True
        assert not manager.healthy()
        # stats() probes restart the dead worker (self-healing).
        stats = manager.stats(timeout=120.0)
        assert stats.alive_shards == 2


class TestWarmRestartChaos:
    def test_replacement_process_serves_hot_keys_from_cache(
        self, spawn_manager
    ):
        """A real process kill: the replacement's first request for a
        question served before the crash is a cache hit, and its query
        text is byte-identical to the pre-crash answer."""
        manager = spawn_manager
        question = SUPPORTED[0]
        first = manager.submit(question, timeout=120.0)
        assert first.ok
        victim = manager._handles[first.shard]
        victim.process.kill()
        victim.process.join(30.0)

        second = manager.submit(question, timeout=120.0)
        assert second.ok
        assert second.cached, "the warm restart must have seeded this key"
        assert second.query == first.query

        stats = manager.stats(timeout=120.0)
        assert stats.restarts >= 1
        assert stats.cache_warmups_ok >= 1
        assert stats.cache_warmup_entries >= 1
        assert stats.requests == stats.accounted

    def test_counters_never_decrease_across_a_kill(self, spawn_manager):
        """Concurrent scrapers racing a process kill each observe a
        monotone counter sequence — a restart folds the dead worker's
        history forward, it never zeroes the merged view."""
        manager = spawn_manager

        def counters(stats):
            cache = stats.total.cache
            return (
                stats.requests,
                stats.errors,
                stats.total.translated,
                stats.total.served_from_cache,
                stats.shed,
                stats.restarts,
                cache.hits if cache is not None else 0,
            )

        for question in SUPPORTED:
            manager.submit(question, timeout=120.0)
        # Probe once so the pre-crash counters are in the manager's
        # carry-forward bookkeeping before the worker dies.
        before = counters(manager.stats(timeout=120.0))

        stop = threading.Event()
        errors: list[AssertionError] = []

        def scrape() -> None:
            last = before
            while not stop.is_set():
                stats = manager.stats(timeout=120.0)
                try:
                    assert stats.requests == stats.accounted
                    seen = counters(stats)
                    for prev, cur in zip(last, seen):
                        assert cur >= prev, (last, seen)
                    last = seen
                except AssertionError as exc:
                    errors.append(exc)
                    return

        scrapers = [threading.Thread(target=scrape) for _ in range(2)]
        for t in scrapers:
            t.start()
        victim = manager._handles[manager.route(SUPPORTED[0])]
        victim.process.kill()
        victim.process.join(30.0)
        assert manager.submit(SUPPORTED[0], timeout=120.0).ok
        stop.set()
        for t in scrapers:
            t.join(180.0)
            assert not t.is_alive()
        assert not errors, errors[0]

        after = counters(manager.stats(timeout=120.0))
        for prev, cur in zip(before, after):
            assert cur >= prev, (before, after)


class TestFaultInjection:
    def test_seeded_faults_inside_spawned_workers(self):
        """A FaultPlan travels through pickling into the spawned worker
        and degrades (not fails) translations under the retry layer —
        and the run is deterministic because the plan is seeded."""
        spec = WorkerSpec(
            cache_size=0,
            retries=3,
            seed=7,
            faults=FaultPlan.parse("rate=0.5,seed=7"),
        )
        with ShardManager(
            shards=2, spec=spec, start_method="spawn",
            connect_timeout=120.0,
        ) as manager:
            outcomes = manager.submit_batch(
                SUPPORTED * 2, timeout=120.0
            )
            assert all(o.ok for o in outcomes)
            stats = manager.stats()
            assert stats.requests == stats.accounted
            # The injected faults actually fired somewhere: retries or
            # degraded answers show up in the merged service stats.
            assert (
                stats.total.retries > 0 or stats.total.degraded > 0
            )
