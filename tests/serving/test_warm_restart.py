"""Warm-restart protocol tests (thread-mode workers).

These exercise the crash-recovery cache replay end to end over the real
frame protocol: a worker "crashes" (its channel is severed), the next
dispatch restarts it in place, and the manager seeds the replacement's
cache from its shadow index before the retry is served — so the hot
keyspace stays hot across restarts.  Process-isolation variants (real
``kill``) live in ``test_chaos.py``; everything here runs on thread
workers so it is fast enough for the default suite.

Crashes mutate manager state, so each test builds its own manager
instead of sharing the module fixture.
"""

import threading

import pytest

from repro.serving import ShardManager, WorkerSpec

from tests.serving.conftest import SUPPORTED, UNSUPPORTED


def _manager(**overrides):
    kwargs = dict(
        shards=2,
        spec=WorkerSpec(cache_size=32, debug_ops=True),
        start_method="thread",
        connect_timeout=60.0,
    )
    kwargs.update(overrides)
    return ShardManager(**kwargs)


def _crash(manager, shard):
    """Sever a thread worker's channel: the next dispatch discovers the
    'crash' and restarts the shard in place."""
    handle = manager._handles[shard]
    handle.channel.close()
    return handle


def _counters(stats):
    """The monotone counter tuple a snapshot must never decrease."""
    cache = stats.total.cache
    return (
        stats.requests,
        stats.errors,
        stats.total.translated,
        stats.total.served_from_cache,
        stats.total.deduplicated,
        stats.shed,
        stats.restarts,
        cache.hits if cache is not None else 0,
        cache.warmed if cache is not None else 0,
    )


class TestWarmRestart:
    def test_replacement_is_seeded_with_hot_keys(self):
        with _manager() as manager:
            question = SUPPORTED[0]
            first = manager.submit(question)
            assert first.ok and not first.cached
            handle = _crash(manager, first.shard)

            # The submit that discovers the crash restarts the worker,
            # seeds its cache, and retries — so the very first request
            # the replacement serves for a hot question is a cache hit.
            second = manager.submit(question, timeout=60.0)
            assert second.ok
            assert second.cached
            assert second.query == first.query  # byte-identical replay
            assert handle.restarts == 1

            stats = manager.stats()
            assert stats.restarts == 1
            assert stats.cache_warmups_ok == 1
            assert stats.cache_warmup_entries >= 1
            assert stats.total.cache.warmed >= 1
            assert stats.requests == stats.accounted

    def test_warmup_disabled_leaves_replacement_cold(self):
        with _manager(warmup_keys=0) as manager:
            question = SUPPORTED[0]
            first = manager.submit(question)
            assert first.ok
            _crash(manager, first.shard)

            second = manager.submit(question, timeout=60.0)
            assert second.ok
            assert not second.cached  # cold start: translated afresh
            assert second.query == first.query  # …but byte-identical

            stats = manager.stats()
            assert stats.restarts == 1
            assert stats.cache_warmups_ok == 0
            assert stats.cache_warmup_entries == 0

    def test_restart_with_no_history_counts_as_empty_warmup(self):
        with _manager() as manager:
            _crash(manager, 0)
            assert manager.ping(0, timeout=60.0)  # triggers the restart
            stats = manager.stats()
            assert stats.restarts == 1
            assert stats.cache_warmups_empty == 1
            assert stats.cache_warmups_ok == 0
            assert stats.cache_warmups_failed == 0

    def test_warmup_seeds_only_entries_owned_by_the_shard(self):
        with _manager() as manager:
            for question in SUPPORTED:
                assert manager.submit(question).ok
            crashed = manager.route(SUPPORTED[0])
            _crash(manager, crashed)
            assert manager.submit(SUPPORTED[0], timeout=60.0).ok

            # Only this shard's keyspace slice was replayed: every
            # seeded entry re-serves as a hit on the owning shard, and
            # the sibling's counters are untouched by the warm-up.
            stats = manager.stats()
            owned = [q for q in SUPPORTED if manager.route(q) == crashed]
            assert stats.cache_warmup_entries == len(owned)
            for shard in stats.shards:
                if shard.shard != crashed:
                    assert shard.stats.cache.warmed == 0

    def test_merged_counters_survive_restart_monotonically(self):
        with _manager() as manager:
            for question in SUPPORTED + [UNSUPPORTED]:
                manager.submit(question)
            before = _counters(manager.stats())
            crashed = manager.route(SUPPORTED[0])
            _crash(manager, crashed)
            assert manager.submit(SUPPORTED[0], timeout=60.0).ok
            after = _counters(manager.stats())
            for prev, cur in zip(before, after):
                assert cur >= prev, (before, after)
            stats = manager.stats()
            assert stats.requests == stats.accounted
            # The pre-crash traffic is still visible after the restart.
            assert stats.requests > len(SUPPORTED) + 1

    def test_counters_monotonic_under_concurrent_snapshots(self):
        """Eight submit threads + scraper threads racing a restart:
        every scraper must observe a monotone non-decreasing counter
        sequence, and the identity must hold in every snapshot."""
        with _manager() as manager:
            stop = threading.Event()
            errors: list[AssertionError] = []

            def hammer(worker: int) -> None:
                questions = SUPPORTED + [UNSUPPORTED]
                i = worker
                while not stop.is_set():
                    try:
                        manager.submit(
                            questions[i % len(questions)], timeout=60.0
                        )
                    except Exception:
                        pass  # shed/timeout racing the crash is fine
                    i += 1

            def scrape() -> None:
                last = None
                while not stop.is_set():
                    stats = manager.stats(timeout=60.0)
                    try:
                        assert stats.requests == stats.accounted
                        seen = _counters(stats)
                        if last is not None:
                            for prev, cur in zip(last, seen):
                                assert cur >= prev, (last, seen)
                        last = seen
                    except AssertionError as exc:
                        errors.append(exc)
                        return

            threads = [
                threading.Thread(target=hammer, args=(w,))
                for w in range(8)
            ] + [threading.Thread(target=scrape) for _ in range(2)]
            for t in threads:
                t.start()
            # Warm up the shadow index, then crash each shard once
            # while traffic and scrapes are in flight.
            for question in SUPPORTED:
                manager.submit(question, timeout=60.0)
            for shard in range(manager.shards):
                _crash(manager, shard)
                manager.submit(SUPPORTED[0], timeout=60.0)
            stop.set()
            for t in threads:
                t.join(120.0)
                assert not t.is_alive()
            assert not errors, errors[0]
            final = manager.stats()
            assert final.restarts >= manager.shards
            assert final.requests == final.accounted


class TestWarmupOps:
    """The donate/receive frame ops, driven directly over the channel."""

    def test_cache_export_returns_hottest_entries(self):
        with _manager() as manager:
            question = SUPPORTED[0]
            first = manager.submit(question)
            shard = first.shard
            reply = manager._roundtrip(
                manager._handles[shard], {"op": "cache_export", "n": 8}
            )
            assert reply["ok"]
            entries = reply["entries"]
            assert entries, "a served question must be exportable"
            hottest = entries[0]
            assert hottest["query"] == first.query
            assert hottest["fingerprint"] == (
                manager._handles[shard].fingerprint
            )

    def test_cache_seed_roundtrip_warms_the_peer(self):
        with _manager() as manager:
            question = SUPPORTED[0]
            donor = manager.submit(question).shard
            receiver = 1 - donor
            exported = manager._roundtrip(
                manager._handles[donor], {"op": "cache_export", "n": 8}
            )["entries"]
            reply = manager._roundtrip(
                manager._handles[receiver],
                {"op": "cache_seed", "entries": exported},
            )
            assert reply["ok"]
            assert reply["warmed"] == len(exported)
            assert reply["refused"] == 0

    def test_cache_seed_refuses_malformed_entries(self):
        with _manager() as manager:
            handle = manager._handles[0]
            fingerprint = handle.fingerprint
            reply = manager._roundtrip(handle, {
                "op": "cache_seed",
                "entries": [
                    "not a dict",
                    {"text": "", "fingerprint": fingerprint, "query": "q"},
                    {"text": "no query", "fingerprint": fingerprint},
                ],
            })
            assert reply["ok"]
            assert reply["warmed"] == 0
            assert reply["refused"] == 3

    def test_cache_seed_without_a_list_is_a_protocol_error(self):
        with _manager() as manager:
            reply = manager._roundtrip(
                manager._handles[0],
                {"op": "cache_seed", "entries": "nope"},
            )
            assert not reply["ok"]
            assert reply["error"]["type"] == "FrameProtocolError"
