"""Tests for consistent-hash routing: uniformity and rebalance.

The two properties sharded serving depends on:

* the keyspace splits *evenly enough* that no shard becomes a hot
  spot (uniformity within tolerance);
* removing one of N shards remaps only that shard's ~K/N slice of K
  keys — everything else keeps its owner, so the other shards' caches
  stay hot (the rebalance property).

Both are deterministic: the ring hashes with SHA-1, never the
process-randomized ``hash()``.
"""

import random

import pytest

from repro.serving import HashRing


def _keys(count, seed=1234):
    rng = random.Random(seed)
    return [f"question {rng.getrandbits(64):x} {i}" for i in range(count)]


class TestMembership:
    def test_add_is_idempotent(self):
        ring = HashRing(["a"])
        ring.add("a")
        assert ring.nodes == frozenset({"a"})
        assert len(ring) == 1

    def test_remove_unknown_is_noop(self):
        ring = HashRing(["a", "b"])
        ring.remove("zzz")
        assert ring.nodes == frozenset({"a", "b"})

    def test_iter_and_len(self):
        ring = HashRing(range(3))
        assert sorted(ring) == [0, 1, 2]
        assert len(ring) == 3

    def test_empty_ring_cannot_route(self):
        with pytest.raises(ValueError):
            HashRing().lookup("anything")

    def test_replicas_must_be_positive(self):
        with pytest.raises(ValueError):
            HashRing(replicas=0)


class TestDeterminism:
    def test_same_key_same_node(self):
        ring = HashRing(range(4))
        for key in _keys(50):
            assert ring.lookup(key) == ring.lookup(key)

    def test_independent_rings_agree(self):
        """Two ring instances over the same nodes route identically —
        the cross-process agreement the front-end relies on (no
        process-randomized hashing anywhere)."""
        first, second = HashRing(range(4)), HashRing(range(4))
        for key in _keys(200):
            assert first.lookup(key) == second.lookup(key)

    def test_insertion_order_is_irrelevant(self):
        forward = HashRing([0, 1, 2, 3])
        backward = HashRing([3, 2, 1, 0])
        for key in _keys(200):
            assert forward.lookup(key) == backward.lookup(key)


class TestUniformity:
    def test_distribution_within_tolerance(self):
        """With 128 vnodes/shard, every shard's share of a 4000-key
        sample stays within ±50% of fair — no hot spot, no starved
        shard."""
        shards = 4
        keys = _keys(4000)
        counts = HashRing(range(shards)).distribution(keys)
        fair = len(keys) / shards
        assert set(counts) == set(range(shards))
        for shard, count in counts.items():
            assert 0.5 * fair <= count <= 1.5 * fair, (
                f"shard {shard} owns {count} of {len(keys)} keys "
                f"(fair share {fair:.0f})"
            )

    def test_distribution_covers_all_keys(self):
        keys = _keys(1000)
        counts = HashRing(range(3)).distribution(keys)
        assert sum(counts.values()) == len(keys)


class TestRebalance:
    def test_removal_remaps_only_the_removed_keyspace(self):
        """The consistent-hashing contract: keys NOT owned by the
        removed shard keep their owner exactly; only the removed
        shard's slice moves."""
        shards, keys = 5, _keys(2000)
        ring = HashRing(range(shards))
        before = {key: ring.lookup(key) for key in keys}
        removed = 2
        ring.remove(removed)
        moved = 0
        for key in keys:
            after = ring.lookup(key)
            if before[key] == removed:
                moved += 1
                assert after != removed
            else:
                assert after == before[key], (
                    f"key owned by shard {before[key]} moved to "
                    f"{after} when shard {removed} left"
                )
        # The moved fraction is the removed shard's share: ~K/N.
        assert moved == sum(
            1 for owner in before.values() if owner == removed
        )
        assert moved <= len(keys) * (2.0 / shards)

    def test_addition_only_steals_keys(self):
        """Growing the ring moves keys only *onto* the new shard."""
        keys = _keys(2000)
        ring = HashRing(range(4))
        before = {key: ring.lookup(key) for key in keys}
        ring.add(4)
        for key in keys:
            after = ring.lookup(key)
            assert after == before[key] or after == 4
        stolen = sum(1 for key in keys if ring.lookup(key) == 4)
        assert 0 < stolen <= len(keys) * (2.0 / 5)

    def test_remove_then_readd_restores_routing(self):
        keys = _keys(500)
        ring = HashRing(range(4))
        before = {key: ring.lookup(key) for key in keys}
        ring.remove(1)
        ring.add(1)
        assert {key: ring.lookup(key) for key in keys} == before
