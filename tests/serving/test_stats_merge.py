"""Tests for cross-shard stats merging and its zero-traffic edges.

The satellite this pins down: every derived rate on a merged
``ServiceStats`` — ``mean_translation_ms``, ``batch_throughput_qps``,
the cache and plan-cache hit rates — must be ``0.0`` for zero-request
shards, empty merges and all-shed intervals, never a
``ZeroDivisionError``; and the serving counter identity must hold on
every composition of shard snapshots and front-end counters.
"""

from dataclasses import replace

from repro.service.cache import CacheStats
from repro.service.service import StageStat
from repro.serving import (
    ServingStats,
    ShardSnapshot,
    merge_service_stats,
    service_stats_from_dict,
    service_stats_to_dict,
)
from repro.serving.stats import carry_baseline, empty_service_stats


def _busy_shard():
    """A snapshot shaped like a shard that served real traffic."""
    return replace(
        empty_service_stats(),
        requests=10,
        translated=6,
        served_from_cache=3,
        deduplicated=0,
        errors=1,
        batches=2,
        batch_questions=10,
        batch_seconds=0.5,
        busy_seconds=0.25,
        plan_cache_hits=4,
        plan_cache_misses=2,
        plans_compiled=2,
        stages={
            "nl-parsing": StageStat(
                total_seconds=0.1, count=9, leaf=True
            ),
        },
        cache=CacheStats(
            hits=3, misses=7, evictions=0, size=7, capacity=32,
            insertions=7, warmed=2,
        ),
        workers=4,
        kb_lint_warnings=1,
    )


class TestZeroTrafficEdges:
    def test_empty_merge_has_no_division_errors(self):
        merged = merge_service_stats([])
        assert merged.requests == 0
        assert merged.mean_translation_ms == 0.0
        assert merged.batch_throughput_qps == 0.0
        assert merged.plan_cache_hit_rate == 0.0
        assert merged.cache_hit_rate == 0.0
        assert merged.cache is None

    def test_zero_request_shard_rates_are_zero(self):
        stats = empty_service_stats()
        assert stats.mean_translation_ms == 0.0
        assert stats.batch_throughput_qps == 0.0
        assert stats.plan_cache_hit_rate == 0.0
        assert stats.accounted == 0

    def test_zero_shard_does_not_poison_busy_merge(self):
        """A dead/fresh shard merges as zeros; the busy shard's rates
        survive untouched."""
        merged = merge_service_stats([_busy_shard(), empty_service_stats()])
        assert merged.requests == 10
        assert merged.mean_translation_ms > 0.0
        assert merged.batch_throughput_qps > 0.0
        assert merged.plan_cache_hit_rate == 4 / 6
        assert merged.cache is not None
        assert merged.cache.hit_rate == 3 / 10

    def test_zero_cache_stats_hit_rate_guard(self):
        zero_cache = CacheStats(
            hits=0, misses=0, evictions=0, size=0, capacity=8,
            insertions=0,
        )
        parts = [replace(empty_service_stats(), cache=zero_cache)] * 2
        merged = merge_service_stats(parts)
        assert merged.cache.hit_rate == 0.0
        assert merged.cache_hit_rate == 0.0


class TestMergeArithmetic:
    def test_counters_sum(self):
        merged = merge_service_stats([_busy_shard(), _busy_shard()])
        assert merged.requests == 20
        assert merged.translated == 12
        assert merged.served_from_cache == 6
        assert merged.errors == 2
        assert merged.batch_seconds == 1.0
        assert merged.plan_cache_hits == 8

    def test_stages_merge_by_name(self):
        first = _busy_shard()
        second = replace(
            empty_service_stats(),
            stages={
                "nl-parsing": StageStat(
                    total_seconds=0.3, count=1, leaf=True
                ),
                "ix-finder": StageStat(
                    total_seconds=0.2, count=5, leaf=True
                ),
            },
        )
        merged = merge_service_stats([first, second])
        assert merged.stages["nl-parsing"].count == 10
        assert merged.stages["nl-parsing"].total_seconds == 0.4
        assert merged.stages["ix-finder"].count == 5

    def test_cacheless_merge_keeps_cache_none(self):
        merged = merge_service_stats(
            [empty_service_stats(), empty_service_stats()]
        )
        assert merged.cache is None

    def test_mixed_cache_presence_keeps_counters(self):
        merged = merge_service_stats(
            [_busy_shard(), replace(empty_service_stats(), cache=None)]
        )
        assert merged.cache is not None
        assert merged.cache.capacity == 32


class TestSerialization:
    def test_roundtrip(self):
        original = _busy_shard()
        rebuilt = service_stats_from_dict(
            service_stats_to_dict(original)
        )
        assert rebuilt == original

    def test_missing_keys_default_to_zero(self):
        """An older worker's snapshot (fewer counters) must still load."""
        rebuilt = service_stats_from_dict({"requests": 3, "translated": 3})
        assert rebuilt.requests == 3
        assert rebuilt.errors == 0
        assert rebuilt.stages == {}
        assert rebuilt.cache is None
        assert rebuilt.mean_translation_ms == 0.0

    def test_roundtrip_is_json_safe(self):
        import json

        payload = service_stats_to_dict(_busy_shard())
        assert json.loads(json.dumps(payload)) == payload


class TestCarryBaseline:
    """The restart fold: what a dead worker's snapshot contributes to
    the shard's carry-forward baseline."""

    def test_counters_carry_verbatim(self):
        base = carry_baseline(_busy_shard())
        assert base.requests == 10
        assert base.translated == 6
        assert base.errors == 1
        assert base.batch_seconds == 0.5
        assert base.stages["nl-parsing"].count == 9
        assert base.cache.hits == 3
        assert base.cache.misses == 7
        assert base.cache.insertions == 7
        assert base.cache.warmed == 2

    def test_gauges_are_zeroed(self):
        """The replacement reports its own fan-out width, KB-lint
        mirror and cache geometry — summing the dead worker's would
        double-count."""
        base = carry_baseline(_busy_shard())
        assert base.workers == 0
        assert base.kb_lint_warnings == 0
        assert base.cache.size == 0
        assert base.cache.capacity == 0

    def test_cacheless_snapshot_stays_cacheless(self):
        base = carry_baseline(empty_service_stats())
        assert base.cache is None

    def test_fold_plus_fresh_epoch_is_monotone(self):
        """carry + live after a restart never drops below the pre-crash
        view, and the live worker's gauges are the only ones counted."""
        pre_crash = _busy_shard()
        fresh_epoch = replace(
            empty_service_stats(),
            requests=2,
            translated=2,
            workers=4,
            cache=CacheStats(
                hits=1, misses=1, evictions=0, size=2, capacity=32,
                insertions=1, warmed=1,
            ),
        )
        merged = merge_service_stats(
            [carry_baseline(pre_crash), fresh_epoch]
        )
        assert merged.requests == 12
        assert merged.cache.hits == 4
        assert merged.cache.warmed == 3
        assert merged.workers == 4          # the live worker's, once
        assert merged.cache.capacity == 32  # ditto

    def test_repeated_folds_accumulate(self):
        carry = empty_service_stats()
        for _ in range(3):  # three crashes, same traffic each epoch
            carry = merge_service_stats(
                [carry, carry_baseline(_busy_shard())]
            )
        assert carry.requests == 30
        assert carry.cache.hits == 9
        assert carry.workers == 0


class TestWarmedField:
    def test_warmed_merges_and_roundtrips(self):
        merged = merge_service_stats([_busy_shard(), _busy_shard()])
        assert merged.cache.warmed == 4
        rebuilt = service_stats_from_dict(
            service_stats_to_dict(merged)
        )
        assert rebuilt.cache.warmed == 4

    def test_old_snapshot_without_warmed_defaults_to_zero(self):
        payload = service_stats_to_dict(_busy_shard())
        del payload["cache"]["warmed"]
        rebuilt = service_stats_from_dict(payload)
        assert rebuilt.cache.warmed == 0
        assert rebuilt.cache.hits == 3


def _snapshot(shard, stats, alive=True):
    return ShardSnapshot(
        shard=shard, pid=1000 + shard, alive=alive, pending=0,
        restarts=0, stats=stats,
    )


class TestServingIdentity:
    def test_identity_holds_with_traffic_and_shed(self):
        parts = [_busy_shard(), empty_service_stats()]
        stats = ServingStats(
            shards=tuple(
                _snapshot(i, part) for i, part in enumerate(parts)
            ),
            total=merge_service_stats(parts),
            shed=4,
            shed_queue_full=3,
            shed_breaker_open=1,
            dispatch_errors=2,
            deadline_expired=1,
            restarts=1,
        )
        assert stats.requests == 10 + 4 + 2
        assert stats.errors == 1 + 2
        assert stats.accounted == stats.requests
        assert stats.to_dict()["identity_holds"] is True

    def test_all_shed_interval(self):
        """Zero worker traffic, everything shed: the identity and the
        shed rate still behave."""
        stats = ServingStats(
            shards=(_snapshot(0, empty_service_stats()),),
            total=empty_service_stats(),
            shed=7,
            shed_queue_full=7,
        )
        assert stats.requests == 7
        assert stats.accounted == 7
        assert stats.shed_rate == 1.0

    def test_quiet_tier_rates_are_zero(self):
        stats = ServingStats(
            shards=(), total=merge_service_stats([])
        )
        assert stats.requests == 0
        assert stats.shed_rate == 0.0
        assert stats.alive_shards == 0
        payload = stats.to_dict()
        assert payload["identity_holds"] is True
        assert payload["mean_translation_ms"] == 0.0
        assert payload["batch_throughput_qps"] == 0.0

    def test_dead_shard_counts_in_alive_and_identity(self):
        stats = ServingStats(
            shards=(
                _snapshot(0, _busy_shard()),
                _snapshot(1, empty_service_stats(), alive=False),
            ),
            total=merge_service_stats(
                [_busy_shard(), empty_service_stats()]
            ),
            dispatch_errors=3,
        )
        assert stats.alive_shards == 1
        assert stats.requests == stats.accounted

    def test_to_dict_shard_payloads(self):
        stats = ServingStats(
            shards=(_snapshot(0, _busy_shard()),),
            total=_busy_shard(),
        )
        payload = stats.to_dict()
        assert payload["shards"][0]["shard"] == 0
        assert payload["shards"][0]["alive"] is True
        assert payload["shards"][0]["stats"]["requests"] == 10
