"""Tests for the shard manager: routing, admission, deadlines, stats.

Thread-mode workers throughout (same entrypoint, same TCP frame
protocol as ``spawn`` — just in-process); ``test_chaos.py`` covers the
real-process behaviors.
"""

import threading
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.errors import AdmissionRejected, ServingError, ShardTimeoutError
from repro.serving import ShardManager, WorkerSpec
from repro.service.cache import TranslationCache

from tests.serving.conftest import SUPPORTED, UNSUPPORTED


class TestConstruction:
    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            ShardManager(shards=0, start_method="thread")
        with pytest.raises(ValueError):
            ShardManager(shards=1, max_pending=0, start_method="thread")
        with pytest.raises(ValueError):
            ShardManager(shards=1, start_method="carrier-pigeon")

    def test_context_manager_closes(self):
        with ShardManager(
            shards=1, spec=WorkerSpec(cache_size=4),
            start_method="thread",
        ) as manager:
            assert manager.submit(SUPPORTED[0]).ok
        assert manager.closed
        with pytest.raises(ServingError):
            manager.submit(SUPPORTED[0])


class TestRouting:
    def test_route_matches_normalized_ring(self, thread_manager):
        question = SUPPORTED[0]
        shard = thread_manager.route(question)
        assert shard == thread_manager.route("  " + question + "  ")
        assert shard == thread_manager._ring.lookup(
            TranslationCache.normalize(question)
        )

    def test_same_question_same_shard(self, thread_manager):
        outcomes = [
            thread_manager.submit(SUPPORTED[0]) for _ in range(3)
        ]
        assert len({o.shard for o in outcomes}) == 1

    def test_repeat_hits_the_shard_cache(self, thread_manager):
        question = SUPPORTED[1]
        first = thread_manager.submit(question)
        second = thread_manager.submit(question)
        assert first.ok and second.ok
        assert second.cached
        assert second.query == first.query


class TestOutcomes:
    def test_unsupported_question_is_typed_error(self, thread_manager):
        outcome = thread_manager.submit(UNSUPPORTED)
        assert not outcome.ok
        assert outcome.error_type == "VerificationError"
        assert outcome.tips  # rephrasing guidance crosses the wire
        assert not outcome.shed

    def test_outcome_to_dict_shapes(self, thread_manager):
        good = thread_manager.submit(SUPPORTED[0]).to_dict()
        assert good["ok"] and "query" in good
        bad = thread_manager.submit(UNSUPPORTED).to_dict()
        assert not bad["ok"]
        assert bad["error"]["type"] == "VerificationError"
        assert bad["error"]["tips"]

    def test_batch_preserves_request_order(self, thread_manager):
        questions = SUPPORTED + [UNSUPPORTED] + SUPPORTED[::-1]
        outcomes = thread_manager.submit_batch(questions)
        assert [o.text for o in outcomes] == questions
        assert [o.ok for o in outcomes] == [
            True, True, True, False, True, True, True,
        ]
        # The batch fans out by keyspace owner, not round-robin.
        for outcome in outcomes:
            assert outcome.shard == thread_manager.route(outcome.text)

    def test_lint_ops(self, thread_manager):
        question_reply = thread_manager.lint(
            {"question": SUPPORTED[0]}
        )
        assert question_reply["ok"]
        assert question_reply["exit_code"] == 0
        query_reply = thread_manager.lint(
            {"query": "SELECT VARIABLES\nWHERE\n{$x instanceOf Place}"}
        )
        assert query_reply["ok"]
        assert "counts" in query_reply

    def test_ping_and_health(self, thread_manager):
        report = thread_manager.health(ping=True)
        assert set(report) == {0, 1}
        for entry in report.values():
            assert entry["alive"]
            assert entry["ping"] == "ok"
        assert thread_manager.healthy()


class TestStatsView:
    def test_identity_after_mixed_traffic(self, thread_manager):
        thread_manager.submit(SUPPORTED[0])
        thread_manager.submit(UNSUPPORTED)
        thread_manager.submit_batch(SUPPORTED)
        stats = thread_manager.stats()
        assert stats.requests == stats.accounted
        assert stats.requests > 0
        assert stats.to_dict()["identity_holds"] is True

    def test_per_shard_snapshots(self, thread_manager):
        thread_manager.submit_batch(SUPPORTED)
        stats = thread_manager.stats()
        assert [s.shard for s in stats.shards] == [0, 1]
        assert all(s.alive for s in stats.shards)
        assert stats.alive_shards == 2
        assert stats.total.requests == sum(
            s.stats.requests for s in stats.shards
        )

    def test_identity_holds_in_every_concurrent_snapshot(self):
        """The acceptance-criteria invariant: hammer the tier from many
        threads while sampling stats, and require the counter identity
        in *every* snapshot, not just the final one."""
        with ShardManager(
            shards=2, spec=WorkerSpec(cache_size=16),
            start_method="thread",
        ) as manager:
            questions = (SUPPORTED + [UNSUPPORTED]) * 6
            violations = []
            stop = threading.Event()

            def sampler():
                while not stop.is_set():
                    snapshot = manager.stats()
                    if snapshot.requests != snapshot.accounted:
                        violations.append(snapshot)
                    time.sleep(0.002)

            thread = threading.Thread(target=sampler)
            thread.start()
            try:
                with ThreadPoolExecutor(max_workers=8) as pool:
                    list(pool.map(manager.submit, questions))
            finally:
                stop.set()
                thread.join(10.0)
            final = manager.stats()
            assert not violations
            assert final.requests == final.accounted
            assert final.total.requests == len(questions)


class TestAdmissionControl:
    @pytest.fixture()
    def tight_manager(self):
        manager = ShardManager(
            shards=1,
            spec=WorkerSpec(cache_size=0, debug_ops=True),
            start_method="thread",
            max_pending=1,
            retry_after=2.5,
        )
        yield manager
        manager.close()

    def test_queue_full_sheds_with_retry_after(self, tight_manager):
        stall = threading.Thread(
            target=tight_manager.debug_stall, args=(0, 0.8)
        )
        stall.start()
        time.sleep(0.1)  # let the stall occupy the worker
        # One submit fills the only pending slot...
        pending = threading.Thread(
            target=lambda: tight_manager.submit(SUPPORTED[0])
        )
        pending.start()
        time.sleep(0.1)
        # ...so the next is shed, not queued.
        with pytest.raises(AdmissionRejected) as excinfo:
            tight_manager.submit(SUPPORTED[1])
        assert excinfo.value.reason == "queue_full"
        assert excinfo.value.retry_after == 2.5
        stall.join(10.0)
        pending.join(10.0)
        stats = tight_manager.stats()
        assert stats.shed_queue_full >= 1
        assert stats.requests == stats.accounted

    def test_batch_shed_produces_typed_outcomes(self, tight_manager):
        stall = threading.Thread(
            target=tight_manager.debug_stall, args=(0, 0.6)
        )
        stall.start()
        time.sleep(0.1)
        pending = threading.Thread(
            target=lambda: tight_manager.submit(SUPPORTED[0])
        )
        pending.start()
        time.sleep(0.1)
        outcomes = tight_manager.submit_batch(SUPPORTED)
        assert all(o.shed for o in outcomes)
        assert all(
            o.error_type == "AdmissionRejected" for o in outcomes
        )
        stall.join(10.0)
        pending.join(10.0)
        stats = tight_manager.stats()
        assert stats.shed >= len(SUPPORTED)
        assert stats.requests == stats.accounted

    def test_deadline_expiry_raises_and_recovers(self, tight_manager):
        stall = threading.Thread(
            target=tight_manager.debug_stall, args=(0, 0.5)
        )
        stall.start()
        time.sleep(0.1)
        with pytest.raises(ShardTimeoutError):
            tight_manager.submit(SUPPORTED[0], timeout=0.15)
        stall.join(10.0)
        # The stale reply is drained by correlation id; the channel
        # keeps working for the next request.
        assert tight_manager.submit(SUPPORTED[0]).ok
        stats = tight_manager.stats()
        assert stats.deadline_expired >= 1
        assert stats.requests == stats.accounted

    def test_stall_requires_debug_ops(self):
        with ShardManager(
            shards=1, spec=WorkerSpec(cache_size=0),
            start_method="thread",
        ) as manager:
            reply = manager.debug_stall(0, 0.0)
            assert not reply.get("ok")
            assert reply["error"]["type"] == "FrameProtocolError"


class TestShutdown:
    def test_close_is_idempotent_and_final(self):
        manager = ShardManager(
            shards=2, spec=WorkerSpec(cache_size=4),
            start_method="thread",
        )
        assert manager.submit(SUPPORTED[0]).ok
        manager.close()
        manager.close()  # second call is a no-op
        assert manager.closed
        for call in (
            lambda: manager.submit(SUPPORTED[0]),
            lambda: manager.submit_batch(SUPPORTED),
            lambda: manager.stats(),
            lambda: manager.lint({"question": SUPPORTED[0]}),
        ):
            with pytest.raises(ServingError):
                call()

    def test_close_drains_inflight_requests(self):
        """A request in flight when close() starts still completes —
        the drain half of graceful shutdown."""
        manager = ShardManager(
            shards=1,
            spec=WorkerSpec(cache_size=0, debug_ops=True),
            start_method="thread",
        )
        results = {}

        def slow_request():
            results["reply"] = manager.debug_stall(0, 0.4)

        thread = threading.Thread(target=slow_request)
        thread.start()
        time.sleep(0.1)
        manager.close(timeout=10.0)
        thread.join(10.0)
        assert results["reply"]["ok"]

    def test_workers_exit_after_close(self):
        manager = ShardManager(
            shards=2, spec=WorkerSpec(cache_size=4),
            start_method="thread",
        )
        runners = [handle.process for handle in manager._handles]
        manager.close()
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline and any(
            r.is_alive() for r in runners
        ):
            time.sleep(0.02)
        assert not any(r.is_alive() for r in runners)
