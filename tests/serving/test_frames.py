"""Tests for the length-prefixed JSON frame protocol."""

import socket
import struct
import threading

import pytest

from repro.errors import ChannelClosedError, FrameProtocolError
from repro.serving import (
    MAX_FRAME_BYTES,
    FrameChannel,
    decode_frame,
    encode_frame,
)


@pytest.fixture()
def channel_pair():
    left_sock, right_sock = socket.socketpair()
    left, right = FrameChannel(left_sock), FrameChannel(right_sock)
    yield left, right
    left.close()
    right.close()


class TestFrameCodec:
    def test_roundtrip(self):
        message = {"op": "translate", "text": "où?", "id": 7}
        frame = encode_frame(message)
        length = struct.unpack("!I", frame[:4])[0]
        assert length == len(frame) - 4
        assert decode_frame(frame[4:]) == message

    def test_encode_rejects_non_object(self):
        with pytest.raises(FrameProtocolError):
            encode_frame(["not", "an", "object"])

    def test_encode_rejects_oversized(self):
        with pytest.raises(FrameProtocolError):
            encode_frame({"blob": "x" * (MAX_FRAME_BYTES + 1)})

    def test_decode_rejects_garbage(self):
        with pytest.raises(FrameProtocolError):
            decode_frame(b"\xff\xfe not json")

    def test_decode_rejects_non_object(self):
        with pytest.raises(FrameProtocolError):
            decode_frame(b"[1, 2, 3]")


class TestFrameChannel:
    def test_roundtrip(self, channel_pair):
        left, right = channel_pair
        left.send({"op": "ping", "id": 1})
        assert right.recv(timeout=5.0) == {"op": "ping", "id": 1}
        right.send({"op": "pong", "id": 1})
        assert left.recv(timeout=5.0) == {"op": "pong", "id": 1}

    def test_timeout_consumes_nothing(self, channel_pair):
        """A timed-out recv must leave the stream aligned: the next
        recv still reads whole frames — this is what lets a request
        deadline expire without poisoning the worker channel."""
        left, right = channel_pair
        with pytest.raises(TimeoutError):
            right.recv(timeout=0.05)
        left.send({"op": "late", "id": 2})
        assert right.recv(timeout=5.0) == {"op": "late", "id": 2}

    def test_eof_raises_channel_closed(self, channel_pair):
        left, right = channel_pair
        left.close()
        with pytest.raises(ChannelClosedError):
            right.recv(timeout=5.0)

    def test_eof_mid_frame_raises_channel_closed(self):
        left_sock, right_sock = socket.socketpair()
        right = FrameChannel(right_sock)
        # A header promising more bytes than ever arrive, then EOF.
        left_sock.sendall(struct.pack("!I", 64) + b"{\"half\":")
        left_sock.close()
        with pytest.raises(ChannelClosedError):
            right.recv(timeout=5.0)
        right.close()

    def test_oversized_header_breaks_channel(self):
        left_sock, right_sock = socket.socketpair()
        right = FrameChannel(right_sock)
        left_sock.sendall(struct.pack("!I", MAX_FRAME_BYTES + 1))
        with pytest.raises(FrameProtocolError):
            right.recv(timeout=5.0)
        # The channel refuses further use rather than de-sync silently.
        with pytest.raises(ChannelClosedError):
            right.recv(timeout=5.0)
        left_sock.close()
        right.close()

    def test_corrupt_payload_breaks_channel(self, channel_pair):
        left, right = channel_pair
        left._sock.sendall(struct.pack("!I", 3) + b"[1]")
        with pytest.raises(FrameProtocolError):
            right.recv(timeout=5.0)
        with pytest.raises(ChannelClosedError):
            right.recv(timeout=5.0)

    def test_send_after_peer_close_raises(self, channel_pair):
        left, right = channel_pair
        right.close()
        with pytest.raises(ChannelClosedError):
            # One send may land in the socket buffer; looping hits the
            # broken pipe deterministically.
            for _ in range(64):
                left.send({"op": "ping", "pad": "x" * 4096})

    def test_close_is_idempotent(self, channel_pair):
        left, _ = channel_pair
        left.close()
        left.close()
        with pytest.raises(ChannelClosedError):
            left.send({"op": "ping"})

    def test_large_frame_roundtrip(self, channel_pair):
        left, right = channel_pair
        message = {"texts": ["question " + "x" * 100] * 500}
        received = {}

        def reader():
            received.update(right.recv(timeout=10.0))

        thread = threading.Thread(target=reader)
        thread.start()
        left.send(message)
        thread.join(10.0)
        assert received == message

    def test_interleaved_frames_stay_ordered(self, channel_pair):
        left, right = channel_pair
        for i in range(50):
            left.send({"id": i})
        assert [right.recv(timeout=5.0)["id"] for i in range(50)] == list(
            range(50)
        )
