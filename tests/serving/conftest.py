"""Shared fixtures for the serving-tier tests.

Most tests run the workers with ``start_method="thread"``: the exact
same ``worker_main`` over the exact same TCP frame protocol, just on
in-process daemon threads — fast to start, visible to coverage, and
sufficient for everything except true process isolation (which
``test_chaos.py`` exercises with real ``spawn`` workers).
"""

import pytest

from repro.serving import ShardManager, WorkerSpec

#: Questions the packaged corpus supports (stable across the suite).
SUPPORTED = [
    "Where do you visit in Buffalo?",
    "Where should we go out in NYC tonight?",
    "What are the most interesting places near Forest Hotel, "
    "Buffalo, we should visit in the fall?",
]

#: A question verification rejects (no supported pattern).
UNSUPPORTED = "How should I store coffee?"


@pytest.fixture(scope="module")
def thread_manager():
    """A 2-shard thread-mode manager shared by read-mostly tests."""
    manager = ShardManager(
        shards=2,
        spec=WorkerSpec(cache_size=32, debug_ops=True),
        start_method="thread",
        connect_timeout=60.0,
    )
    yield manager
    manager.close()
