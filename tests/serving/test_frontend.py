"""Tests for the HTTP/JSON front-end: endpoints, status mapping,
load shedding over HTTP, and the metrics exposition."""

import json
import socket
import threading
import time
import urllib.error
import urllib.request
from urllib.parse import urlsplit

import pytest

from repro.obs.metrics import parse_prometheus_text
from repro.serving import HTTPFrontend, ShardManager, WorkerSpec

from tests.serving.conftest import SUPPORTED, UNSUPPORTED


@pytest.fixture(scope="module")
def frontend(thread_manager):
    front = HTTPFrontend(thread_manager)
    yield front
    front.close()


def _request(front, path, body=None, method=None):
    """One HTTP exchange; returns (status, headers, parsed body)."""
    data = json.dumps(body).encode("utf-8") if body is not None else None
    request = urllib.request.Request(
        front.address + path,
        data=data,
        headers={"Content-Type": "application/json"} if data else {},
        method=method,
    )
    try:
        with urllib.request.urlopen(request, timeout=60) as response:
            raw = response.read()
            status, headers = response.status, dict(response.headers)
    except urllib.error.HTTPError as err:
        raw = err.read()
        status, headers = err.code, dict(err.headers)
    content_type = headers.get("Content-Type", "")
    parsed = (
        json.loads(raw) if content_type.startswith("application/json")
        else raw.decode("utf-8")
    )
    return status, headers, parsed


class TestTranslate:
    def test_ok(self, frontend):
        status, _, body = _request(
            frontend, "/translate", {"question": SUPPORTED[0]}
        )
        assert status == 200
        assert body["ok"]
        assert body["query"].startswith("SELECT VARIABLES")
        assert body["shard"] in (0, 1)

    def test_unsupported_is_422_with_tips(self, frontend):
        status, _, body = _request(
            frontend, "/translate", {"question": UNSUPPORTED}
        )
        assert status == 422
        assert body["error"]["type"] == "VerificationError"
        assert body["error"]["tips"]

    def test_missing_question_is_400(self, frontend):
        status, _, body = _request(frontend, "/translate", {"nope": 1})
        assert status == 400
        assert body["error"]["type"] == "BadRequest"

    def test_empty_body_is_400(self, frontend):
        status, _, body = _request(
            frontend, "/translate", method="POST"
        )
        assert status == 400

    def test_invalid_json_is_400(self, frontend):
        request = urllib.request.Request(
            frontend.address + "/translate",
            data=b"{not json",
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=30)
        assert excinfo.value.code == 400

    def test_non_object_body_is_400(self, frontend):
        request = urllib.request.Request(
            frontend.address + "/translate",
            data=b'["a list"]',
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=30)
        assert excinfo.value.code == 400

    def test_oversized_body_is_refused(self, frontend):
        """The server refuses the body without draining it: the client
        sees the 413, or a broken pipe if its send was still in
        flight — either way the oversized request never reaches a
        worker."""
        from repro.serving.frontend import MAX_BODY_BYTES

        request = urllib.request.Request(
            frontend.address + "/translate",
            data=b"x" * (MAX_BODY_BYTES + 1),
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.URLError) as excinfo:
            urllib.request.urlopen(request, timeout=30)
        if isinstance(excinfo.value, urllib.error.HTTPError):
            assert excinfo.value.code == 413

    def test_negative_content_length_is_400_and_closes(self, frontend):
        """Regression: a negative Content-Length used to flow into
        ``rfile.read()``, where ``read(-5)`` means read-to-EOF — on a
        keep-alive connection the stream position becomes unknowable.
        It must be refused up front and the connection closed."""
        parts = urlsplit(frontend.address)
        raw = (
            "POST /translate HTTP/1.1\r\n"
            f"Host: {parts.netloc}\r\n"
            "Content-Type: application/json\r\n"
            "Content-Length: -5\r\n"
            "\r\n"
        ).encode("ascii")
        with socket.create_connection(
            (parts.hostname, parts.port), timeout=30
        ) as sock:
            sock.sendall(raw)
            sock.settimeout(10)
            data = b""
            closed = False
            try:
                while True:
                    chunk = sock.recv(4096)
                    if not chunk:
                        closed = True
                        break
                    data += chunk
            except socket.timeout:
                closed = False
        status_line = data.split(b"\r\n", 1)[0]
        assert b" 400 " in status_line, status_line
        assert b"non-negative" in data
        assert closed, "a desynced connection must be closed, not reused"

    def test_non_numeric_content_length_is_400(self, frontend):
        parts = urlsplit(frontend.address)
        raw = (
            "POST /translate HTTP/1.1\r\n"
            f"Host: {parts.netloc}\r\n"
            "Content-Type: application/json\r\n"
            "Content-Length: banana\r\n"
            "Connection: close\r\n"
            "\r\n"
        ).encode("ascii")
        with socket.create_connection(
            (parts.hostname, parts.port), timeout=30
        ) as sock:
            sock.sendall(raw)
            sock.settimeout(10)
            data = b""
            while True:
                chunk = sock.recv(4096)
                if not chunk:
                    break
                data += chunk
        assert b" 400 " in data.split(b"\r\n", 1)[0]

    def test_get_is_405(self, frontend):
        status, _, _ = _request(frontend, "/translate")
        assert status == 405


class TestBatch:
    def test_mixed_batch_is_200_with_summary(self, frontend):
        status, _, body = _request(
            frontend, "/batch",
            {"questions": SUPPORTED + [UNSUPPORTED]},
        )
        assert status == 200
        assert body["questions"] == 4
        assert body["ok"] == 3
        assert body["failed"] == 1
        assert body["shed"] == 0
        assert [item["question"] for item in body["items"]] == (
            SUPPORTED + [UNSUPPORTED]
        )

    def test_empty_batch_is_400(self, frontend):
        status, _, _ = _request(frontend, "/batch", {"questions": []})
        assert status == 400

    def test_non_string_question_is_400(self, frontend):
        status, _, _ = _request(
            frontend, "/batch", {"questions": ["ok", 7]}
        )
        assert status == 400


class TestLint:
    def test_lint_question(self, frontend):
        status, _, body = _request(
            frontend, "/lint", {"question": SUPPORTED[0]}
        )
        assert status == 200
        assert body["ok"]
        assert body["exit_code"] == 0
        assert "id" not in body

    def test_lint_query(self, frontend):
        status, _, body = _request(
            frontend, "/lint",
            {"query": "SELECT VARIABLES\nWHERE\n{$x instanceOf Place}"},
        )
        assert status == 200
        assert "diagnostics" in body

    def test_lint_without_input_is_400(self, frontend):
        status, _, _ = _request(frontend, "/lint", {"other": True})
        assert status == 400


class TestStatsAndHealth:
    def test_stats_identity_holds(self, frontend):
        _request(frontend, "/translate", {"question": SUPPORTED[0]})
        status, _, body = _request(frontend, "/stats")
        assert status == 200
        assert body["identity_holds"] is True
        assert body["requests"] == body["accounted"]
        assert len(body["shards"]) == 2

    def test_stats_panel_render(self, frontend):
        status, headers, body = _request(
            frontend, "/stats?format=panel"
        )
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")
        assert "== sharded serving ==" in body
        assert "identity: holds" in body

    def test_healthz_ok(self, frontend):
        status, _, body = _request(frontend, "/healthz")
        assert status == 200
        assert body["status"] == "ok"
        assert set(body["shards"]) == {"0", "1"}

    def test_post_to_stats_is_405(self, frontend):
        status, _, _ = _request(frontend, "/stats", {"x": 1})
        assert status == 405

    def test_unknown_path_is_404(self, frontend):
        status, _, body = _request(frontend, "/nope")
        assert status == 404
        assert body["error"]["type"] == "NotFound"


class TestMetrics:
    def test_exposition_parses_and_has_serving_series(self, frontend):
        _request(frontend, "/translate", {"question": SUPPORTED[0]})
        status, headers, body = _request(frontend, "/metrics")
        assert status == 200
        assert "version=0.0.4" in headers["Content-Type"]
        metrics = parse_prometheus_text(body)
        assert metrics["serving_shed_total"]["type"] == "counter"
        assert metrics["serving_http_requests_total"]["type"] == "counter"
        assert metrics["serving_pending"]["type"] == "gauge"
        assert metrics["serving_workers_alive"]["samples"]

    def test_http_counters_label_endpoint_and_status(self, frontend):
        _request(frontend, "/translate", {"question": UNSUPPORTED})
        _, _, body = _request(frontend, "/metrics")
        metrics = parse_prometheus_text(body)
        samples = metrics["serving_http_requests_total"]["samples"]
        key = (
            "serving_http_requests_total",
            (("endpoint", "/translate"), ("status", "422")),
        )
        assert samples.get(key, 0) >= 1


class TestLoadShedding:
    def test_saturation_returns_429_with_retry_after(self):
        """The acceptance scenario: saturate a 1-shard tier and require
        HTTP 429 + Retry-After, with the sheds visible in
        serving_shed_total."""
        manager = ShardManager(
            shards=1,
            spec=WorkerSpec(cache_size=0, debug_ops=True),
            start_method="thread",
            max_pending=1,
            retry_after=3.0,
        )
        front = HTTPFrontend(manager)
        try:
            stall = threading.Thread(
                target=manager.debug_stall, args=(0, 1.0)
            )
            stall.start()
            time.sleep(0.1)
            filler = threading.Thread(
                target=_request, args=(
                    front, "/translate", {"question": SUPPORTED[0]}
                ),
            )
            filler.start()
            time.sleep(0.15)
            status, headers, body = _request(
                front, "/translate", {"question": SUPPORTED[1]}
            )
            assert status == 429
            assert headers["Retry-After"] == "3"
            assert body["error"]["type"] == "AdmissionRejected"
            assert body["error"]["reason"] == "queue_full"
            stall.join(15.0)
            filler.join(15.0)
            _, _, exposition = _request(front, "/metrics")
            metrics = parse_prometheus_text(exposition)
            shed = metrics["serving_shed_total"]["samples"].get(
                ("serving_shed_total", (("reason", "queue_full"),)), 0
            )
            assert shed >= 1
            _, _, stats = _request(front, "/stats")
            assert stats["identity_holds"] is True
            assert stats["shed"] >= 1
        finally:
            front.close()
            manager.close()


class TestFrontendLifecycle:
    def test_close_is_idempotent(self, thread_manager):
        front = HTTPFrontend(thread_manager)
        address = front.address
        front.close()
        front.close()
        with pytest.raises(urllib.error.URLError):
            urllib.request.urlopen(address + "/healthz", timeout=2)

    def test_context_manager(self, thread_manager):
        with HTTPFrontend(thread_manager) as front:
            status, _, _ = _request(front, "/healthz")
            assert status == 200

    def test_closed_manager_maps_to_503(self):
        manager = ShardManager(
            shards=1, spec=WorkerSpec(cache_size=4),
            start_method="thread",
        )
        front = HTTPFrontend(manager)
        try:
            manager.close()
            status, _, body = _request(
                front, "/translate", {"question": SUPPORTED[0]}
            )
            assert status == 503
            assert body["error"]["type"] == "ServingError"
        finally:
            front.close()
