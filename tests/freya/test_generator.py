"""Tests for the FREyA-like general query generator."""

import pytest

from repro.core.ir import NodeTerm
from repro.data.ontologies import load_merged_ontology
from repro.freya.generator import FeedbackStore, GeneralQueryGenerator
from repro.nlp import parse
from repro.rdf.ontology import KB
from repro.ui.interaction import (
    AutoInteraction,
    DisambiguationRequest,
    ScriptedInteraction,
)


@pytest.fixture(scope="module")
def ontology():
    return load_merged_ontology()


@pytest.fixture
def generator(ontology):
    return GeneralQueryGenerator(ontology)


def generate(generator, text, provider=None):
    return generator.generate(parse(text), provider or AutoInteraction())


def triple_strings(result):
    return {str(t) for t in result.triples}


class TestMentionDetection:
    def test_proper_mention_with_apposition(self, generator):
        result = generate(
            generator, "the places near Forest Hotel, Buffalo"
        )
        proper = [m for m in result.mentions if m.kind == "proper"]
        assert len(proper) == 1
        assert proper[0].phrase == "Forest Hotel Buffalo"

    def test_common_mentions(self, generator):
        result = generate(generator, "Which hotel has a thrill ride?")
        phrases = {m.phrase for m in result.mentions}
        assert "hotel" in phrases
        assert "thrill ride" in phrases

    def test_pronouns_are_not_mentions(self, generator):
        result = generate(generator, "Where do you visit?")
        assert all(m.head.tag != "PRP" for m in result.mentions)


class TestEntityLinking:
    def test_entity_binding(self, generator):
        result = generate(
            generator, "the places near Forest Hotel, Buffalo"
        )
        assert KB["Forest_Hotel,_Buffalo,_NY"] in (
            result.entity_bindings.values()
        )

    def test_class_binding_and_triple(self, generator):
        result = generate(generator, "What are the best places?")
        assert KB.Place in result.class_bindings.values()
        assert any(
            t.p == KB.instanceOf and t.o == KB.Place
            for t in result.triples
        )

    def test_unknown_mention_ignored(self, generator):
        result = generate(generator, "Where can I find a zorblatt?")
        assert result.entity_bindings == {}


class TestDisambiguation:
    def test_ambiguous_buffalo_asks_user(self, generator):
        provider = ScriptedInteraction([1], strict=True)
        result = generate(
            generator, "What are the nicest parks in Buffalo?", provider
        )
        request = provider.transcript[0][0]
        assert isinstance(request, DisambiguationRequest)
        labels = {c.label for c in request.candidates}
        assert "Buffalo, NY, USA" in labels
        assert "Buffalo, IL, USA" in labels

    def test_choice_is_recorded_as_feedback(self, generator):
        provider = ScriptedInteraction([1])
        result = generate(
            generator, "What are the nicest parks in Buffalo?", provider
        )
        chosen = result.disambiguations[0][1]
        assert chosen in (result.entity_bindings.values())
        assert generator.feedback.choices  # remembered

    def test_feedback_prevents_second_dialogue(self, generator):
        provider = ScriptedInteraction([1], strict=True)
        generate(generator, "What are the nicest parks in Buffalo?",
                 provider)
        # Second session: the feedback boost resolves "Buffalo" alone.
        strict = ScriptedInteraction([], strict=True)
        result = generate(
            generator, "What are the nicest parks in Buffalo?", strict
        )
        assert strict.transcript == []  # no question asked

    def test_degree_ranking_prefers_prominent_buffalo(self, ontology):
        matches = ontology.lookup("Buffalo", kinds=("entity",))
        assert matches[0].iri == KB["Buffalo,_NY"]

    def test_unambiguous_entity_skips_dialogue(self, generator):
        provider = ScriptedInteraction([], strict=True)
        result = generate(
            generator, "the places near Delaware Park", provider
        )
        assert provider.transcript == []


class TestTripleGeneration:
    def test_running_example_where_triples(self, generator):
        result = generate(
            generator,
            "What are the most interesting places near Forest Hotel, "
            "Buffalo, we should visit in the fall?",
        )
        preds = [t.p for t in result.triples]
        assert KB.instanceOf in preds
        assert KB.near in preds
        # Temporal "in the fall" must NOT become a general triple.
        assert KB.locatedIn not in preds

    def test_located_in_from_preposition(self, generator):
        result = generate(generator,
                          "Which hotel in Vegas has the best thrill ride?")
        located = [t for t in result.triples if t.p == KB.locatedIn]
        assert len(located) == 1
        assert located[0].o == KB.Las_Vegas

    def test_property_verb(self, generator):
        result = generate(generator,
                          "Which hotel in Vegas has the best thrill ride?")
        assert any(t.p == KB.hasAttraction for t in result.triples)

    def test_wh_adverb_place_class(self, generator):
        result = generate(generator, "Where do you visit in Buffalo?")
        assert any(
            t.p == KB.instanceOf and t.o == KB.Place
            for t in result.triples
        )
        assert any(t.p == KB.locatedIn for t in result.triples)

    def test_type_noun_idiom(self, generator):
        result = generate(generator,
                          "What type of digital camera should I buy?")
        assert any(
            t.p == KB.instanceOf and t.o == KB.CameraType
            for t in result.triples
        )
        # "type" and "camera" co-refer.
        assert result.coreferences

    def test_fiber_rich_compound(self, generator):
        result = generate(
            generator,
            "Which fiber-rich dishes do people like to eat?",
        )
        rich = [t for t in result.triples if t.p == KB.richIn]
        assert len(rich) == 1
        assert rich[0].o == KB.Fiber

    def test_instanceof_triples_come_first(self, generator):
        result = generate(generator,
                          "Which hotel in Vegas has the best thrill ride?")
        kinds = [t.p == KB.instanceOf for t in result.triples]
        assert kinds == sorted(kinds, reverse=True)

    def test_target_detection_copular(self, generator):
        result = generate(generator, "What are the best places in Paris?")
        assert result.target.text == "places"

    def test_target_detection_wdt(self, generator):
        result = generate(generator, "Which hotel has a pool?")
        assert result.target.text == "hotel"


class TestFeedbackStore:
    def test_record_and_boost(self, ontology):
        store = FeedbackStore()
        matches = ontology.lookup("Buffalo", kinds=("entity",))
        store.record("Buffalo", KB["Buffalo,_IL"])
        boosted = store.boost("Buffalo", matches)
        assert boosted[0].iri == KB["Buffalo,_IL"]

    def test_boost_is_phrase_specific(self, ontology):
        store = FeedbackStore()
        store.record("Springfield", KB["Buffalo,_IL"])
        matches = ontology.lookup("Buffalo", kinds=("entity",))
        assert store.boost("Buffalo", matches) == matches

    def test_normalized_phrase_keys(self):
        store = FeedbackStore()
        store.record("  Buffalo ", KB["Buffalo,_NY"])
        assert store.choices["buffalo"] == KB["Buffalo,_NY"]
