"""Tests for fact-sets, ground truth and the simulated crowd."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crowd.model import FactSet, GroundTruth, verbalize_fact_set
from repro.crowd.scenarios import (
    buffalo_travel_truth,
    habit_fact_set,
    opinion_fact_set,
)
from repro.crowd.simulator import SimulatedCrowd
from repro.data.ontologies import load_merged_ontology
from repro.oassisql.ast import ANYTHING, QueryTriple
from repro.rdf.ontology import KB
from repro.rdf.terms import Literal


FS_VISIT = habit_fact_set("visit", KB.Delaware_Park, ("in", KB.Fall))
FS_OPINION = opinion_fact_set(KB.Delaware_Park, "interesting")


class TestFactSet:
    def test_canonical_order(self):
        a = FactSet((
            QueryTriple(ANYTHING, KB.visit, KB.Delaware_Park),
            QueryTriple(ANYTHING, KB["in"], KB.Fall),
        ))
        b = FactSet((
            QueryTriple(ANYTHING, KB["in"], KB.Fall),
            QueryTriple(ANYTHING, KB.visit, KB.Delaware_Park),
        ))
        assert a == b
        assert hash(a) == hash(b)
        assert a.key() == b.key()

    def test_distinct_fact_sets_differ(self):
        a = habit_fact_set("visit", KB.Delaware_Park)
        b = habit_fact_set("visit", KB.Buffalo_Zoo)
        assert a != b

    def test_variable_rejected(self):
        from repro.rdf.terms import Variable
        with pytest.raises(TypeError):
            FactSet(
                (QueryTriple(ANYTHING, KB.visit, Variable("x")),)
            ).key()


class TestVerbalization:
    def test_habit_question(self):
        question = verbalize_fact_set(FS_VISIT, load_merged_ontology())
        assert question == (
            "How often do you visit Delaware Park in fall?"
        )

    def test_opinion_question(self):
        question = verbalize_fact_set(FS_OPINION, load_merged_ontology())
        assert question == (
            'Would you say that Delaware Park is "interesting"?'
        )

    def test_without_ontology_uses_local_names(self):
        question = verbalize_fact_set(FS_VISIT)
        assert "Delaware Park" in question


class TestGroundTruth:
    def test_default_for_unknown(self):
        truth = GroundTruth(default=0.05)
        assert truth.support(FS_VISIT) == 0.05

    def test_set_and_get(self):
        truth = GroundTruth()
        truth.set(FS_VISIT, 0.6)
        assert truth.support(FS_VISIT) == 0.6
        assert len(truth) == 1

    def test_out_of_range_rejected(self):
        truth = GroundTruth()
        with pytest.raises(ValueError):
            truth.set(FS_VISIT, 1.5)

    def test_scenario_truths_are_consistent(self):
        truth = buffalo_travel_truth()
        assert truth.support(FS_VISIT) == 0.55
        assert truth.support(FS_OPINION) == 0.82


class TestSimulatedCrowd:
    def test_determinism_same_seed(self):
        truth = buffalo_travel_truth()
        a = SimulatedCrowd(truth, size=20, noise=0.1, seed=7)
        b = SimulatedCrowd(truth, size=20, noise=0.1, seed=7)
        for m in range(20):
            assert a.ask(a.member(m), FS_VISIT) == b.ask(
                b.member(m), FS_VISIT
            )

    def test_different_seeds_differ(self):
        truth = buffalo_travel_truth()
        a = SimulatedCrowd(truth, size=20, noise=0.1, seed=1)
        b = SimulatedCrowd(truth, size=20, noise=0.1, seed=2)
        answers_a = [a.ask(a.member(m), FS_VISIT) for m in range(20)]
        answers_b = [b.ask(b.member(m), FS_VISIT) for m in range(20)]
        assert answers_a != answers_b

    def test_member_is_self_consistent(self):
        crowd = SimulatedCrowd(buffalo_travel_truth(), size=5, noise=0.2)
        member = crowd.member(0)
        assert crowd.ask(member, FS_VISIT) == crowd.ask(member, FS_VISIT)

    def test_answers_in_unit_interval(self):
        crowd = SimulatedCrowd(buffalo_travel_truth(), size=50,
                               noise=0.3)
        for m in crowd.members():
            answer = crowd.ask(m, FS_VISIT)
            assert 0.0 <= answer <= 1.0

    def test_zero_noise_reports_truth(self):
        crowd = SimulatedCrowd(buffalo_travel_truth(), size=10,
                               noise=0.0)
        for m in crowd.members():
            assert crowd.ask(m, FS_VISIT) == pytest.approx(0.55)

    def test_population_support_near_truth(self):
        crowd = SimulatedCrowd(buffalo_travel_truth(), size=400,
                               noise=0.1, seed=3)
        estimate = crowd.population_support(FS_VISIT)
        assert abs(estimate - 0.55) < 0.05

    def test_question_counter(self):
        crowd = SimulatedCrowd(buffalo_travel_truth(), size=5)
        crowd.ask(crowd.member(0), FS_VISIT)
        crowd.ask(crowd.member(1), FS_VISIT)
        assert crowd.questions_asked == 2
        crowd.reset_counters()
        assert crowd.questions_asked == 0

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            SimulatedCrowd(GroundTruth(), size=0)
        with pytest.raises(ValueError):
            SimulatedCrowd(GroundTruth(), noise=-1)

    @given(st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
           st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=25, deadline=None)
    def test_any_truth_any_seed_stays_in_bounds(self, support, seed):
        truth = GroundTruth(default=support)
        crowd = SimulatedCrowd(truth, size=10, noise=0.2, seed=seed)
        for m in crowd.members()[:5]:
            assert 0.0 <= crowd.ask(m, FS_VISIT) <= 1.0
