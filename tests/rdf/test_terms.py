"""Unit tests for RDF term types."""

import pytest

from repro.rdf.terms import IRI, Literal, BNode, Namespace, Variable, XSD


class TestIRI:
    def test_local_name_hash(self):
        assert IRI("http://ex.org/ns#Place").local_name == "Place"

    def test_local_name_slash(self):
        assert IRI("http://ex.org/kb/Place").local_name == "Place"

    def test_namespace(self):
        assert IRI("http://ex.org/kb/Place").namespace == "http://ex.org/kb/"

    def test_n3(self):
        assert IRI("http://ex.org/x").n3() == "<http://ex.org/x>"

    def test_equality_and_hash(self):
        assert IRI("http://a") == IRI("http://a")
        assert len({IRI("http://a"), IRI("http://a")}) == 1


class TestLiteral:
    def test_string_n3(self):
        assert Literal("fall").n3() == '"fall"'

    def test_escaping(self):
        assert Literal('say "hi"').n3() == '"say \\"hi\\""'

    def test_lang_tag(self):
        assert Literal("Herbst", lang="de").n3() == '"Herbst"@de'

    def test_typed(self):
        lit = Literal(5, datatype=XSD.integer)
        assert lit.is_numeric
        assert lit.as_python() == 5

    def test_boolean_not_numeric(self):
        assert not Literal(True).is_numeric

    def test_datatype_and_lang_conflict(self):
        with pytest.raises(ValueError):
            Literal("x", datatype=XSD.string, lang="en")


class TestVariableAndBNode:
    def test_variable_n3(self):
        assert Variable("x").n3() == "?x"

    def test_bnode_n3(self):
        assert BNode("b1").n3() == "_:b1"

    def test_distinct_types_unequal(self):
        assert Variable("x") != BNode("x")


class TestNamespace:
    def test_attribute_access(self):
        ns = Namespace("http://ex.org/")
        assert ns.Place == IRI("http://ex.org/Place")

    def test_getitem_with_spaces(self):
        ns = Namespace("http://ex.org/")
        assert ns["Forest Hotel"] == IRI("http://ex.org/Forest_Hotel")

    def test_contains(self):
        ns = Namespace("http://ex.org/")
        assert ns.Place in ns
        assert IRI("http://other.org/x") not in ns

    def test_empty_base_rejected(self):
        with pytest.raises(ValueError):
            Namespace("")
