"""Unit and property-based tests for the indexed triple store."""

import pytest
from hypothesis import given, strategies as st

from repro.rdf.store import TripleStore
from repro.rdf.terms import IRI, Literal, Variable


A, B, C = IRI("http://x/A"), IRI("http://x/B"), IRI("http://x/C")
P, Q = IRI("http://x/p"), IRI("http://x/q")


@pytest.fixture
def store():
    s = TripleStore()
    s.add(A, P, B)
    s.add(A, P, C)
    s.add(B, Q, C)
    s.add(A, Q, Literal("label"))
    return s


class TestMutation:
    def test_add_returns_true_then_false(self):
        s = TripleStore()
        assert s.add(A, P, B) is True
        assert s.add(A, P, B) is False
        assert len(s) == 1

    def test_remove(self, store):
        assert store.remove(A, P, B) is True
        assert store.remove(A, P, B) is False
        assert (A, P, B) not in store
        assert len(store) == 3

    def test_add_all_counts_inserts(self):
        s = TripleStore()
        n = s.add_all([(A, P, B), (A, P, B), (B, P, C)])
        assert n == 2

    def test_variable_rejected(self):
        s = TripleStore()
        with pytest.raises(TypeError):
            s.add(Variable("x"), P, B)

    def test_plain_string_rejected(self):
        s = TripleStore()
        with pytest.raises(TypeError):
            s.add(A, P, "oops")  # type: ignore[arg-type]

    def test_remove_prunes_empty_index_rows(self):
        # Regression: remove() used to leave empty nested dicts/sets
        # behind, so wildcard scans and count() slowed down after churn.
        s = TripleStore()
        s.add(A, P, B)
        s.remove(A, P, B)
        assert s._spo == {}
        assert s._pos == {}
        assert s._osp == {}
        assert len(s) == 0
        assert s.count() == 0

    def test_remove_keeps_sibling_entries(self):
        s = TripleStore()
        s.add(A, P, B)
        s.add(A, P, C)
        s.add(A, Q, B)
        s.remove(A, P, B)
        assert (A, P, C) in s
        assert (A, Q, B) in s
        assert s.count(A, None, None) == 2
        # Only the (P, B) rows emptied; the subject row survives.
        assert A in s._spo and P in s._spo[A]
        assert B not in s._pos.get(P, {})

    def test_churn_leaves_no_empty_rows(self):
        s = TripleStore()
        subjects = [IRI(f"http://x/s{i}") for i in range(20)]
        for subj in subjects:
            s.add(subj, P, B)
            s.add(subj, Q, C)
        for subj in subjects:
            s.remove(subj, P, B)
            s.remove(subj, Q, C)
        assert len(s) == 0
        assert s._spo == {} and s._pos == {} and s._osp == {}
        # Interleaved re-adds still behave.
        assert s.add(A, P, B) is True
        assert s.count(None, P, None) == 1


class TestFreeze:
    def test_frozen_store_rejects_add(self, store):
        from repro.errors import FrozenStoreError

        store.freeze()
        assert store.frozen
        with pytest.raises(FrozenStoreError):
            store.add(C, P, A)
        assert len(store) == 4

    def test_frozen_store_rejects_remove(self, store):
        from repro.errors import FrozenStoreError

        store.freeze()
        with pytest.raises(FrozenStoreError):
            store.remove(A, P, B)
        assert (A, P, B) in store

    def test_freeze_returns_self_and_is_idempotent(self, store):
        assert store.freeze() is store
        assert store.freeze() is store

    def test_copy_of_frozen_store_is_mutable(self, store):
        store.freeze()
        clone = store.copy()
        assert not clone.frozen
        assert clone.add(C, P, A) is True
        # The frozen original is untouched.
        assert len(store) == 4
        assert len(clone) == 5


class TestPatterns:
    def test_fully_bound(self, store):
        assert list(store.triples(A, P, B)) == [(A, P, B)]

    def test_sp_open_o(self, store):
        objs = {o for _, _, o in store.triples(A, P, None)}
        assert objs == {B, C}

    def test_po_open_s(self, store):
        subjects = {s for s, _, _ in store.triples(None, Q, C)}
        assert subjects == {B}

    def test_o_only(self, store):
        triples = set(store.triples(None, None, C))
        assert triples == {(A, P, C), (B, Q, C)}

    def test_s_only(self, store):
        assert len(list(store.triples(A, None, None))) == 3

    def test_all_open(self, store):
        assert len(list(store.triples())) == 4

    def test_variable_is_wildcard(self, store):
        assert len(list(store.triples(Variable("s"), P, Variable("o")))) == 2

    def test_miss_returns_empty(self, store):
        assert list(store.triples(C, P, None)) == []


class TestHelpers:
    def test_contains(self, store):
        assert store.contains(A, P, B)
        assert not store.contains(B, P, A)

    def test_count(self, store):
        assert store.count() == 4
        assert store.count(A, None, None) == 3
        assert store.count(None, P, None) == 2
        assert store.count(A, P, None) == 2
        assert store.count(None, P, C) == 1
        assert store.count(A, None, C) == 1
        assert store.count(A, P, C) == 1
        assert store.count(C, P, B) == 0

    def test_subjects_distinct(self, store):
        assert set(store.subjects(P, None)) == {A}

    def test_objects(self, store):
        assert set(store.objects(A, P)) == {B, C}

    def test_value_single_open(self, store):
        assert store.value(B, Q, None) == C

    def test_value_no_match_is_none(self, store):
        assert store.value(C, Q, None) is None

    def test_value_requires_one_open(self, store):
        with pytest.raises(ValueError):
            store.value(A, None, None)

    def test_copy_is_independent(self, store):
        clone = store.copy()
        clone.add(C, P, A)
        assert len(store) == 4
        assert len(clone) == 5


iris = st.sampled_from([A, B, C, P, Q])
triples = st.tuples(iris, iris, iris)


class TestStoreProperties:
    @given(st.lists(triples, max_size=40))
    def test_size_equals_distinct_triples(self, items):
        store = TripleStore()
        for s, p, o in items:
            store.add(s, p, o)
        assert len(store) == len(set(items))

    @given(st.lists(triples, max_size=40))
    def test_indexes_agree(self, items):
        store = TripleStore(items)
        for s, p, o in set(items):
            assert (s, p, o) in store
            assert s in set(store.subjects(p, o))
            assert o in set(store.objects(s, p))

    @given(st.lists(triples, max_size=30), st.lists(triples, max_size=30))
    def test_add_remove_roundtrip(self, keep, drop):
        store = TripleStore()
        for t in keep + drop:
            store.add(*t)
        for t in drop:
            store.remove(*t)
        expected = set(keep) - set(drop)
        assert set(store.triples()) == expected

    @given(st.lists(triples, max_size=40))
    def test_count_matches_iteration(self, items):
        store = TripleStore(items)
        for s in (A, B, None):
            for p in (P, None):
                n = store.count(s, p, None)
                assert n == len(list(store.triples(s, p, None)))


class TestStats:
    def test_empty_store(self):
        snap = TripleStore().stats()
        assert snap.size == 0
        assert snap.predicates == {}
        assert snap.epoch == 0

    def test_incremental_counts(self, store):
        snap = store.stats()
        assert snap.size == 4
        assert snap.distinct_subjects == 2  # A, B
        p = snap.predicates[P]
        assert (p.triples, p.distinct_subjects, p.distinct_objects) \
            == (2, 1, 2)
        q = snap.predicates[Q]
        assert (q.triples, q.distinct_subjects, q.distinct_objects) \
            == (2, 2, 2)

    def test_duplicate_add_leaves_stats_alone(self, store):
        before = store.stats()
        assert store.add(A, P, B) is False
        after = store.stats()
        assert after == before

    def test_remove_decrements(self, store):
        store.remove(A, P, B)
        p = store.stats().predicates[P]
        assert (p.triples, p.distinct_subjects, p.distinct_objects) \
            == (1, 1, 1)
        store.remove(A, P, C)
        assert P not in store.stats().predicates

    def test_epoch_bumps_on_every_mutation(self, store):
        epoch = store.epoch
        store.add(C, P, A)
        assert store.epoch == epoch + 1
        store.remove(C, P, A)
        assert store.epoch == epoch + 2
        # No-op mutations leave the epoch alone.
        store.add(A, P, B)
        store.remove(C, P, A)
        assert store.epoch == epoch + 2

    def test_snapshot_is_detached(self, store):
        snap = store.stats()
        store.add(C, P, A)
        assert snap.predicates[P].triples == 2
        assert store.stats().predicates[P].triples == 3

    def test_tokens_are_unique(self):
        assert TripleStore().token != TripleStore().token

    def test_estimate_known_predicate(self, store):
        # P: 2 triples, 1 subject (A), 2 objects (B, C).
        assert store.estimate(False, P, False) == 2.0
        assert store.estimate(True, P, False) == 2.0   # per subject
        assert store.estimate(False, P, True) == 1.0   # per object
        assert store.estimate(True, P, True) == 1.0
        assert store.estimate(True, IRI("http://x/none"), True) == 0.0

    def test_estimate_open_predicate(self, store):
        assert store.estimate(False, None, False) == 4.0
        assert store.estimate(True, None, False) == 2.0  # 4/2 subjects
        assert store.estimate(True, None, True) >= 1.0
        assert TripleStore().estimate(True, None, True) == 0.0

    def test_predicate_count(self, store):
        assert store.predicate_count() == 2
