"""Property-based tests: Turtle serialization round-trips any store."""

from hypothesis import given, settings, strategies as st

from repro.rdf.store import TripleStore
from repro.rdf.terms import IRI, Literal, XSD
from repro.rdf.turtle import parse_turtle, serialize_turtle


iris = st.sampled_from([
    IRI("http://repro.example/kb/" + name)
    for name in ("A", "B", "C", "p", "q", "Forest_Hotel,_Buffalo,_NY",
                 "instanceOf", "near")
])

literals = st.one_of(
    st.text(
        alphabet=st.characters(
            codec="ascii", exclude_characters='\r',
        ),
        max_size=20,
    ).map(Literal),
    st.integers(min_value=-10**6, max_value=10**6).map(
        lambda n: Literal(n, datatype=XSD.integer)
    ),
    st.booleans().map(lambda b: Literal(b, datatype=XSD.boolean)),
    st.sampled_from(["en", "de", "fr"]).flatmap(
        lambda lang: st.text(alphabet="abc xyz", min_size=1,
                             max_size=10).map(
            lambda t: Literal(t, lang=lang)
        )
    ),
)

triples = st.tuples(iris, iris, st.one_of(iris, literals))


class TestTurtleRoundTrip:
    @given(st.lists(triples, max_size=30))
    @settings(max_examples=100, deadline=None)
    def test_serialize_parse_preserves_triples(self, items):
        store = TripleStore(items)
        store.bind_prefix("kb", "http://repro.example/kb/")
        text = serialize_turtle(store)
        reparsed = parse_turtle(text)
        assert set(reparsed.triples()) == set(store.triples())

    @given(st.lists(triples, max_size=20))
    @settings(max_examples=50, deadline=None)
    def test_round_trip_without_prefixes(self, items):
        store = TripleStore(items)
        reparsed = parse_turtle(serialize_turtle(store))
        assert set(reparsed.triples()) == set(store.triples())

    @given(st.lists(triples, min_size=1, max_size=20))
    @settings(max_examples=50, deadline=None)
    def test_serialization_is_deterministic(self, items):
        store = TripleStore(items)
        assert serialize_turtle(store) == serialize_turtle(store)
