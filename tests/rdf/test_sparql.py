"""Unit tests for the SPARQL subset parser and evaluator."""

import pytest

from repro.errors import SPARQLSyntaxError
from repro.rdf.sparql import parse_sparql, sparql_select
from repro.rdf.terms import IRI, Literal
from repro.rdf.turtle import parse_turtle


DATA = """
@prefix kb: <http://repro.example/kb/> .
@prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .

kb:Delaware_Park kb:instanceOf kb:Place ;
    rdfs:label "Delaware Park" ;
    kb:near kb:Forest_Hotel ;
    kb:rating 4.5 .
kb:Buffalo_Zoo kb:instanceOf kb:Place ;
    rdfs:label "Buffalo Zoo" ;
    kb:near kb:Forest_Hotel ;
    kb:rating 4.2 .
kb:Albright_Knox kb:instanceOf kb:Museum ;
    rdfs:label "Albright-Knox Art Gallery" ;
    kb:near kb:Forest_Hotel ;
    kb:rating 4.7 .
kb:Niagara_Falls kb:instanceOf kb:Place ;
    rdfs:label "Niagara Falls" ;
    kb:rating 4.9 .
kb:Museum kb:subClassOf kb:Place .
"""

PREFIX = "PREFIX kb: <http://repro.example/kb/> " \
         "PREFIX rdfs: <http://www.w3.org/2000/01/rdf-schema#> "


@pytest.fixture(scope="module")
def store():
    return parse_turtle(DATA)


def kb(name):
    return IRI("http://repro.example/kb/" + name)


class TestBasicSelect:
    def test_single_pattern(self, store):
        rows = sparql_select(store, PREFIX + """
            SELECT ?x WHERE { ?x kb:instanceOf kb:Place }
        """)
        assert {r["x"] for r in rows} == {
            kb("Delaware_Park"), kb("Buffalo_Zoo"), kb("Niagara_Falls")
        }

    def test_join_two_patterns(self, store):
        rows = sparql_select(store, PREFIX + """
            SELECT ?x WHERE {
                ?x kb:instanceOf kb:Place .
                ?x kb:near kb:Forest_Hotel
            }
        """)
        assert {r["x"] for r in rows} == {
            kb("Delaware_Park"), kb("Buffalo_Zoo")
        }

    def test_select_star(self, store):
        rows = sparql_select(store, PREFIX + """
            SELECT * WHERE { ?x kb:near ?y }
        """)
        assert all({"x", "y"} <= set(r) for r in rows)
        assert len(rows) == 3

    def test_projection(self, store):
        rows = sparql_select(store, PREFIX + """
            SELECT ?label WHERE {
                ?x kb:instanceOf kb:Museum . ?x rdfs:label ?label
            }
        """)
        assert rows == [{"label": Literal("Albright-Knox Art Gallery")}]

    def test_no_match_returns_empty(self, store):
        rows = sparql_select(store, PREFIX + """
            SELECT ?x WHERE { ?x kb:instanceOf kb:Restaurant }
        """)
        assert rows == []

    def test_variable_predicate(self, store):
        rows = sparql_select(store, PREFIX + """
            SELECT ?p WHERE { kb:Delaware_Park ?p kb:Place }
        """)
        assert rows == [{"p": kb("instanceOf")}]

    def test_shared_variable_same_binding(self, store):
        rows = sparql_select(store, PREFIX + """
            SELECT ?x WHERE { ?x kb:near ?x }
        """)
        assert rows == []


class TestFilters:
    def test_numeric_comparison(self, store):
        rows = sparql_select(store, PREFIX + """
            SELECT ?x WHERE {
                ?x kb:rating ?r . FILTER(?r > 4.4)
            }
        """)
        assert {r["x"] for r in rows} == {
            kb("Delaware_Park"), kb("Albright_Knox"), kb("Niagara_Falls")
        }

    def test_boolean_connectives(self, store):
        rows = sparql_select(store, PREFIX + """
            SELECT ?x WHERE {
                ?x kb:rating ?r . FILTER(?r > 4.4 && ?r < 4.8)
            }
        """)
        assert {r["x"] for r in rows} == {
            kb("Delaware_Park"), kb("Albright_Knox")
        }

    def test_negation(self, store):
        rows = sparql_select(store, PREFIX + """
            SELECT ?x WHERE {
                ?x kb:instanceOf kb:Place . FILTER(!(?x = kb:Niagara_Falls))
            }
        """)
        assert kb("Niagara_Falls") not in {r["x"] for r in rows}

    def test_contains_function(self, store):
        rows = sparql_select(store, PREFIX + """
            SELECT ?x WHERE {
                ?x rdfs:label ?l . FILTER(CONTAINS(LCASE(STR(?l)), "zoo"))
            }
        """)
        assert [r["x"] for r in rows] == [kb("Buffalo_Zoo")]

    def test_regex_function(self, store):
        rows = sparql_select(store, PREFIX + """
            SELECT ?x WHERE {
                ?x rdfs:label ?l . FILTER(REGEX(STR(?l), "^Buffalo"))
            }
        """)
        assert [r["x"] for r in rows] == [kb("Buffalo_Zoo")]

    def test_strstarts(self, store):
        rows = sparql_select(store, PREFIX + """
            SELECT ?x WHERE {
                ?x rdfs:label ?l . FILTER(STRSTARTS(STR(?l), "Niagara"))
            }
        """)
        assert [r["x"] for r in rows] == [kb("Niagara_Falls")]


class TestSolutionModifiers:
    def test_order_by_desc_limit(self, store):
        rows = sparql_select(store, PREFIX + """
            SELECT ?x ?r WHERE { ?x kb:rating ?r }
            ORDER BY DESC(?r) LIMIT 2
        """)
        assert [r["x"] for r in rows] == [
            kb("Niagara_Falls"), kb("Albright_Knox")
        ]

    def test_order_by_ascending(self, store):
        rows = sparql_select(store, PREFIX + """
            SELECT ?r WHERE { ?x kb:rating ?r } ORDER BY ?r
        """)
        values = [r["r"].value for r in rows]
        assert values == sorted(values)

    def test_offset(self, store):
        rows = sparql_select(store, PREFIX + """
            SELECT ?r WHERE { ?x kb:rating ?r } ORDER BY ?r LIMIT 2 OFFSET 1
        """)
        assert [r["r"].value for r in rows] == [4.5, 4.7]

    def test_distinct(self, store):
        rows = sparql_select(store, PREFIX + """
            SELECT DISTINCT ?c WHERE { ?x kb:instanceOf ?c }
        """)
        assert len(rows) == 2


class TestParserErrors:
    def test_missing_where(self):
        with pytest.raises(SPARQLSyntaxError):
            parse_sparql("SELECT ?x { ?x ?p ?o }")

    def test_unterminated_group(self):
        with pytest.raises(SPARQLSyntaxError):
            parse_sparql("SELECT ?x WHERE { ?x ?p ?o")

    def test_no_variables(self):
        with pytest.raises(SPARQLSyntaxError):
            parse_sparql("SELECT WHERE { ?x ?p ?o }")

    def test_undeclared_prefix(self):
        with pytest.raises(SPARQLSyntaxError):
            parse_sparql("SELECT ?x WHERE { ?x kb:p ?o }")

    def test_trailing_garbage(self):
        with pytest.raises(SPARQLSyntaxError):
            parse_sparql("SELECT ?x WHERE { ?x ?p ?o } BANANA ?x")

    def test_dollar_variables_accepted(self):
        query = parse_sparql("SELECT $x WHERE { $x $p $o }")
        assert query.variables == ["x"]


class TestStreaming:
    """LIMIT/OFFSET slice the solution stream; joins never recurse."""

    def test_limit_offset_window_matches_unsliced_run(self, store):
        base = PREFIX + "SELECT ?x ?r WHERE { ?x kb:rating ?r }"
        full = sparql_select(store, base)
        window = sparql_select(store, base + " LIMIT 2 OFFSET 1")
        # No ORDER BY: the window is a contiguous slice of the same
        # stream (same evaluator, same enumeration order).
        assert window == full[1:3]

    def test_limit_stops_the_join_early(self, store):
        probes = []
        original = type(store).triples

        def counting(self, s=None, p=None, o=None):
            for t in original(self, s, p, o):
                probes.append(t)
                yield t

        query = PREFIX + "SELECT ?x WHERE { ?x kb:rating ?r } LIMIT 1"
        try:
            type(store).triples = counting
            rows = sparql_select(store, query)
        finally:
            type(store).triples = original
        assert len(rows) == 1
        # Four entities carry ratings; an eager evaluator would probe
        # all of them before slicing.
        assert len(probes) < 4

    def test_distinct_dedups_incrementally(self, store):
        query = (PREFIX +
                 "SELECT DISTINCT ?t WHERE { ?x kb:instanceOf ?t } "
                 "LIMIT 1")
        rows = sparql_select(store, query)
        assert len(rows) == 1
        assert rows[0]["t"] in (kb("Place"), kb("Museum"))

    def test_order_by_still_sees_every_row(self, store):
        query = (PREFIX + "SELECT ?x ?r WHERE { ?x kb:rating ?r } "
                 "ORDER BY DESC(?r) LIMIT 1")
        rows = sparql_select(store, query)
        assert rows[0]["x"] == kb("Niagara_Falls")

    def test_planner_modes_agree_on_select(self, store):
        query = (PREFIX + "SELECT ?x ?r WHERE "
                 "{ ?x kb:instanceOf kb:Place . ?x kb:rating ?r } "
                 "ORDER BY DESC(?r)")
        greedy = sparql_select(store, query, planner="greedy")
        cost = sparql_select(store, query, planner="cost")
        assert greedy == cost

    def test_hundred_pattern_chain_needs_no_recursion(self):
        # One pattern per joined variable used to recurse once per
        # pattern; the explicit stack must evaluate a 100-pattern
        # chain even under a recursion limit the old evaluator would
        # have blown through.
        import sys

        from repro.rdf.sparql import TriplePattern, evaluate_bgp
        from repro.rdf.store import TripleStore
        from repro.rdf.terms import Variable

        n = 100
        nxt = IRI("http://x/next")
        store = TripleStore()
        for i in range(n + 1):
            store.add(IRI(f"http://x/n{i}"), nxt, IRI(f"http://x/n{i+1}"))
        chain = [
            TriplePattern(Variable(f"v{i}"), nxt, Variable(f"v{i+1}"))
            for i in range(n)
        ]
        limit = sys.getrecursionlimit()
        try:
            sys.setrecursionlimit(90)
            for planner in ("greedy", "cost"):
                solutions = evaluate_bgp(store, chain, planner=planner)
                assert len(solutions) == 2
                assert all(len(s) == n + 1 for s in solutions)
        finally:
            sys.setrecursionlimit(limit)
