"""Unit tests for the Turtle reader/writer."""

import pytest

from repro.errors import TurtleSyntaxError
from repro.rdf.terms import IRI, Literal, RDF, XSD
from repro.rdf.turtle import parse_turtle, serialize_turtle


DOC = """
@prefix kb: <http://repro.example/kb/> .
@prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .

kb:Delaware_Park kb:instanceOf kb:Place ;
    rdfs:label "Delaware Park" ;
    kb:near kb:Forest_Hotel,_Buffalo,_NY .

# a comment line
kb:Buffalo_Zoo kb:instanceOf kb:Place ;
    kb:ticketPrice 16 ;
    kb:rating 4.5 ;
    kb:openYearRound true .
"""


class TestParsing:
    def test_basic_triples(self):
        store = parse_turtle(DOC)
        kb = "http://repro.example/kb/"
        assert store.contains(
            IRI(kb + "Delaware_Park"), IRI(kb + "instanceOf"),
            IRI(kb + "Place"),
        )

    def test_label_literal(self):
        store = parse_turtle(DOC)
        kb = "http://repro.example/kb/"
        labels = list(store.objects(
            IRI(kb + "Delaware_Park"),
            IRI("http://www.w3.org/2000/01/rdf-schema#label"),
        ))
        assert labels == [Literal("Delaware Park")]

    def test_commas_in_local_name(self):
        store = parse_turtle(DOC)
        kb = "http://repro.example/kb/"
        objs = list(store.objects(
            IRI(kb + "Delaware_Park"), IRI(kb + "near")
        ))
        assert objs == [IRI(kb + "Forest_Hotel,_Buffalo,_NY")]

    def test_numeric_literals(self):
        store = parse_turtle(DOC)
        kb = "http://repro.example/kb/"
        zoo = IRI(kb + "Buffalo_Zoo")
        assert store.value(zoo, IRI(kb + "ticketPrice"), None).value == 16
        assert store.value(zoo, IRI(kb + "rating"), None).value == 4.5

    def test_boolean_literal(self):
        store = parse_turtle(DOC)
        kb = "http://repro.example/kb/"
        value = store.value(
            IRI(kb + "Buffalo_Zoo"), IRI(kb + "openYearRound"), None
        )
        assert value.value is True

    def test_a_keyword(self):
        store = parse_turtle(
            "@prefix kb: <http://x/> .\nkb:Rome a kb:City ."
        )
        assert store.contains(IRI("http://x/Rome"), RDF.type,
                              IRI("http://x/City"))

    def test_object_list(self):
        store = parse_turtle(
            '@prefix kb: <http://x/> .\n'
            'kb:a kb:alias "one" , "two" .'
        )
        assert set(store.objects(IRI("http://x/a"), IRI("http://x/alias"))) \
            == {Literal("one"), Literal("two")}

    def test_lang_tag(self):
        store = parse_turtle(
            '@prefix kb: <http://x/> .\nkb:a kb:label "Herbst"@de .'
        )
        lit = store.value(IRI("http://x/a"), IRI("http://x/label"), None)
        assert lit.lang == "de"

    def test_typed_literal(self):
        store = parse_turtle(
            '@prefix kb: <http://x/> .\n'
            '@prefix xsd: <http://www.w3.org/2001/XMLSchema#> .\n'
            'kb:a kb:n "7"^^xsd:integer .'
        )
        lit = store.value(IRI("http://x/a"), IRI("http://x/n"), None)
        assert lit.value == 7 and lit.datatype == XSD.integer

    def test_full_iris(self):
        store = parse_turtle("<http://x/s> <http://x/p> <http://x/o> .")
        assert store.contains(IRI("http://x/s"), IRI("http://x/p"),
                              IRI("http://x/o"))

    def test_prefixes_recorded(self):
        store = parse_turtle(DOC)
        assert store.prefixes["kb"] == "http://repro.example/kb/"


class TestErrors:
    def test_undeclared_prefix(self):
        with pytest.raises(TurtleSyntaxError):
            parse_turtle("kb:a kb:b kb:c .")

    def test_missing_dot(self):
        with pytest.raises(TurtleSyntaxError):
            parse_turtle("<http://x/s> <http://x/p> <http://x/o>")

    def test_literal_subject_rejected(self):
        with pytest.raises(TurtleSyntaxError):
            parse_turtle('"nope" <http://x/p> <http://x/o> .')

    def test_a_as_object_rejected(self):
        with pytest.raises(TurtleSyntaxError):
            parse_turtle("<http://x/s> <http://x/p> a .")

    def test_error_carries_line(self):
        try:
            parse_turtle("@prefix kb: <http://x/> .\nkb:a kb:b @@ .")
        except TurtleSyntaxError as exc:
            assert exc.line == 2
        else:  # pragma: no cover
            pytest.fail("expected TurtleSyntaxError")


class TestRoundTrip:
    def test_serialize_then_parse(self):
        original = parse_turtle(DOC)
        text = serialize_turtle(original)
        reparsed = parse_turtle(text)
        assert set(reparsed.triples()) == set(original.triples())

    def test_serializer_groups_subjects(self):
        store = parse_turtle(DOC)
        text = serialize_turtle(store)
        # One statement block per subject.
        assert text.count("kb:Delaware_Park") == 1

    @pytest.mark.parametrize("value", [
        "\\n",            # backslash + 'n': must NOT decode to newline
        "line\nbreak",
        'say "hi"',
        "back\\slash",
        "tab\there",
        "trailing\\",
        "\\\\n mix \n \\",
    ])
    def test_escape_heavy_literals_round_trip(self, value):
        # Regression: _unescape used a str.replace chain, so the
        # serialized form of backslash+'n' ("\\n") reparsed as
        # backslash+newline.
        from repro.rdf.store import TripleStore

        store = TripleStore()
        store.add(IRI("http://repro.example/kb/A"),
                  IRI("http://repro.example/kb/p"),
                  Literal(value))
        reparsed = parse_turtle(serialize_turtle(store))
        assert set(reparsed.triples()) == set(store.triples())
