"""Property-based tests: the SPARQL evaluator vs. a naive reference.

The production evaluator joins patterns in selectivity order with filter
push-down; the reference implementation below does the dumbest possible
thing (enumerate all triples per pattern, nested-loop join, filter at
the end).  On random stores and random basic graph patterns the two must
agree exactly.
"""

from hypothesis import given, settings, strategies as st

from repro.rdf.sparql import FilterExpr, TriplePattern, evaluate_bgp
from repro.rdf.store import TripleStore
from repro.rdf.terms import IRI, Variable


IRIS = [IRI(f"http://x/{name}") for name in "abcdefg"]
PREDICATES = [IRI(f"http://x/p{i}") for i in range(3)]

triples = st.tuples(
    st.sampled_from(IRIS), st.sampled_from(PREDICATES),
    st.sampled_from(IRIS),
)

terms = st.one_of(
    st.sampled_from(IRIS),
    st.sampled_from([Variable(v) for v in "uvwxyz"]),
)
pattern_predicates = st.one_of(
    st.sampled_from(PREDICATES),
    st.sampled_from([Variable(v) for v in "pq"]),
)
patterns = st.builds(TriplePattern, terms, pattern_predicates, terms)


def reference_bgp(store, bgp):
    """Naive nested-loop join, no ordering, no push-down."""
    solutions = [dict()]
    for pattern in bgp:
        next_solutions = []
        for sol in solutions:
            for s, p, o in store.triples():
                candidate = dict(sol)
                ok = True
                for term, value in ((pattern.s, s), (pattern.p, p),
                                    (pattern.o, o)):
                    if isinstance(term, Variable):
                        if candidate.get(term.name, value) != value:
                            ok = False
                            break
                        candidate[term.name] = value
                    elif term != value:
                        ok = False
                        break
                if ok:
                    next_solutions.append(candidate)
        solutions = next_solutions
    return solutions


def canon(solutions):
    return sorted(
        tuple(sorted((k, str(v)) for k, v in s.items()))
        for s in solutions
    )


class TestEvaluatorAgainstReference:
    @given(st.lists(triples, max_size=25),
           st.lists(patterns, min_size=1, max_size=3))
    @settings(max_examples=120, deadline=None)
    def test_bgp_join_agrees_with_reference(self, data, bgp):
        store = TripleStore(data)
        fast = evaluate_bgp(store, bgp)
        slow = reference_bgp(store, bgp)
        assert canon(fast) == canon(slow)

    @given(st.lists(triples, max_size=25),
           st.lists(patterns, min_size=1, max_size=2),
           st.sampled_from(IRIS))
    @settings(max_examples=60, deadline=None)
    def test_equality_filter_agrees(self, data, bgp, pinned):
        store = TripleStore(data)
        # FILTER(?u = <pinned>) — only applies when ?u is used.
        used = set()
        for p in bgp:
            used |= p.variables()
        if "u" not in used:
            return
        flt = FilterExpr("cmp", (
            "=", FilterExpr("var", ("u",)), FilterExpr("term", (pinned,)),
        ))
        fast = evaluate_bgp(store, bgp, filters=[flt])
        slow = [
            s for s in reference_bgp(store, bgp) if s.get("u") == pinned
        ]
        assert canon(fast) == canon(slow)

    @given(st.lists(triples, max_size=20))
    @settings(max_examples=60, deadline=None)
    def test_unsatisfiable_pattern_is_empty(self, data):
        store = TripleStore(data)
        missing = IRI("http://x/never-used")
        bgp = [TriplePattern(Variable("s"), missing, Variable("o"))]
        assert evaluate_bgp(store, bgp) == []

    @given(st.lists(triples, min_size=1, max_size=20))
    @settings(max_examples=60, deadline=None)
    def test_fully_open_pattern_returns_every_triple(self, data):
        store = TripleStore(data)
        bgp = [TriplePattern(Variable("s"), Variable("p"), Variable("o"))]
        assert len(evaluate_bgp(store, bgp)) == len(store)
