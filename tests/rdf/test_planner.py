"""Tests for the cost-based query planner and its plan cache."""

import pytest

from repro.rdf.planner import (
    PlanExplain,
    QueryPlanner,
    default_planner,
    query_shape,
)
from repro.rdf.sparql import (
    FilterExpr,
    TriplePattern,
    evaluate_bgp,
    iter_bgp,
)
from repro.rdf.store import TripleStore
from repro.rdf.terms import IRI, Literal, Variable


KB = "http://x/"
TYPE, NEAR, LABEL = IRI(KB + "type"), IRI(KB + "near"), IRI(KB + "label")
PLACE = IRI(KB + "Place")


def iri(name):
    return IRI(KB + name)


def canon(solutions):
    return sorted(
        tuple(sorted((k, str(v)) for k, v in s.items()))
        for s in solutions
    )


@pytest.fixture
def store():
    s = TripleStore()
    for i in range(12):
        s.add(iri(f"place{i}"), TYPE, PLACE)
        s.add(iri(f"place{i}"), NEAR, iri(f"place{(i + 1) % 12}"))
        s.add(iri(f"place{i}"), LABEL, Literal(f"Place {i}"))
    s.add(iri("hotel"), TYPE, iri("Hotel"))
    s.add(iri("hotel"), NEAR, iri("place0"))
    return s


BGP = [
    TriplePattern(Variable("x"), TYPE, PLACE),
    TriplePattern(Variable("x"), NEAR, Variable("y")),
    TriplePattern(Variable("y"), LABEL, Variable("l")),
]


class TestQueryShape:
    def test_constants_abstract_to_stat_class(self):
        a = query_shape([TriplePattern(Variable("x"), TYPE, PLACE)])
        b = query_shape(
            [TriplePattern(Variable("z"), TYPE, iri("Hotel"))]
        )
        assert a == b

    def test_predicate_identity_is_part_of_the_shape(self):
        a = query_shape([TriplePattern(Variable("x"), TYPE, PLACE)])
        b = query_shape([TriplePattern(Variable("x"), NEAR, PLACE)])
        assert a != b

    def test_variable_names_canonicalize(self):
        a = query_shape([
            TriplePattern(Variable("x"), NEAR, Variable("y")),
            TriplePattern(Variable("y"), LABEL, Variable("l")),
        ])
        b = query_shape([
            TriplePattern(Variable("u"), NEAR, Variable("v")),
            TriplePattern(Variable("v"), LABEL, Variable("w")),
        ])
        assert a == b

    def test_join_structure_differs(self):
        joined = query_shape([
            TriplePattern(Variable("x"), NEAR, Variable("y")),
            TriplePattern(Variable("y"), LABEL, Variable("l")),
        ])
        cartesian = query_shape([
            TriplePattern(Variable("x"), NEAR, Variable("y")),
            TriplePattern(Variable("z"), LABEL, Variable("l")),
        ])
        assert joined != cartesian

    def test_filters_and_initial_bindings_contribute(self):
        bgp = [TriplePattern(Variable("x"), NEAR, Variable("y"))]
        flt = FilterExpr("cmp", (
            "=", FilterExpr("var", ("x",)),
            FilterExpr("term", (iri("a"),)),
        ))
        assert query_shape(bgp) != query_shape(bgp, filters=[flt])
        assert query_shape(bgp) != query_shape(bgp, initial_vars=["x"])


class TestPlanCache:
    def test_hit_on_same_shape_different_constants(self, store):
        planner = QueryPlanner()
        list(planner.solutions(store, BGP))
        other = [
            TriplePattern(Variable("a"), TYPE, iri("Hotel")),
            TriplePattern(Variable("a"), NEAR, Variable("b")),
            TriplePattern(Variable("b"), LABEL, Variable("c")),
        ]
        list(planner.solutions(store, other))
        snap = planner.snapshot()
        assert (snap.hits, snap.misses, snap.compiled) == (1, 1, 1)
        assert snap.hit_rate == 0.5

    def test_mutation_epoch_invalidates(self, store):
        planner = QueryPlanner()
        list(planner.solutions(store, BGP))
        store.add(iri("extra"), TYPE, PLACE)
        list(planner.solutions(store, BGP))
        snap = planner.snapshot()
        assert snap.invalidations == 1
        assert snap.compiled == 2
        # The re-planned entry is fresh again.
        list(planner.solutions(store, BGP))
        assert planner.snapshot().hits == 1

    def test_remove_also_bumps_the_epoch(self, store):
        planner = QueryPlanner()
        list(planner.solutions(store, BGP))
        store.remove(iri("hotel"), NEAR, iri("place0"))
        list(planner.solutions(store, BGP))
        assert planner.snapshot().invalidations == 1

    def test_lru_bound(self, store):
        planner = QueryPlanner(cache_size=2)
        shapes = [
            [TriplePattern(Variable("x"), p, Variable("y"))]
            for p in (TYPE, NEAR, LABEL)
        ]
        for bgp in shapes:
            list(planner.solutions(store, bgp))
        snap = planner.snapshot()
        assert snap.cache_size == 2
        assert snap.cache_capacity == 2
        # The first shape was evicted: re-running it misses again.
        list(planner.solutions(store, shapes[0]))
        assert planner.snapshot().misses == 4

    def test_invalid_cache_size_rejected(self):
        with pytest.raises(ValueError):
            QueryPlanner(cache_size=0)

    def test_clear_drops_plans_but_keeps_counters(self, store):
        planner = QueryPlanner()
        list(planner.solutions(store, BGP))
        planner.clear()
        snap = planner.snapshot()
        assert snap.cache_size == 0
        assert snap.misses == 1
        list(planner.solutions(store, BGP))
        assert planner.snapshot().misses == 2

    def test_stores_do_not_share_plans(self, store):
        planner = QueryPlanner()
        other = TripleStore()
        other.add(iri("a"), TYPE, PLACE)
        other.add(iri("a"), NEAR, iri("b"))
        other.add(iri("b"), LABEL, Literal("B"))
        list(planner.solutions(store, BGP))
        list(planner.solutions(other, BGP))
        assert planner.snapshot().misses == 2

    def test_default_planner_is_shared(self):
        assert default_planner() is default_planner()


class TestPlanQuality:
    def test_selective_pattern_goes_first(self, store):
        # type=Hotel matches one triple, the open NEAR pattern 13 —
        # the plan must probe the hotel first.
        planner = QueryPlanner()
        bgp = [
            TriplePattern(Variable("x"), NEAR, Variable("y")),
            TriplePattern(Variable("x"), TYPE, iri("Hotel")),
        ]
        bound = planner.plan(store, bgp)
        assert bound.plan.order[0] == 1

    def test_bound_variable_propagation(self, store):
        # After placing the type pattern, NEAR probes with ?x bound —
        # its estimate must be per-subject, not the full predicate.
        planner = QueryPlanner()
        bound = planner.plan(store, BGP)
        first = bound.plan.order[0]
        assert BGP[first].variables() == {"x"}
        assert all(est >= 1.0 for est in bound.plan.estimates[:1])

    def test_filters_attach_at_first_full_binding(self, store):
        planner = QueryPlanner()
        flt = FilterExpr("cmp", (
            "!=", FilterExpr("var", ("l",)),
            FilterExpr("term", (Literal("Place 0"),)),
        ))
        results = list(planner.solutions(store, BGP, filters=[flt]))
        expected = evaluate_bgp(store, BGP, filters=[flt])
        assert canon(results) == canon(expected)
        assert all(s["l"] != Literal("Place 0") for s in results)

    def test_never_bindable_filter_is_dropped(self, store):
        # Seed parity: a filter over a variable no pattern binds is
        # silently ignored, not an error.
        flt = FilterExpr("cmp", (
            "=", FilterExpr("var", ("ghost",)),
            FilterExpr("term", (iri("a"),)),
        ))
        planner = QueryPlanner()
        fast = list(planner.solutions(store, BGP, filters=[flt]))
        slow = evaluate_bgp(store, BGP, filters=[flt])
        assert canon(fast) == canon(slow)

    def test_initial_bindings(self, store):
        planner = QueryPlanner()
        initial = {"x": iri("place3")}
        fast = list(planner.solutions(store, BGP, initial=initial))
        slow = evaluate_bgp(store, BGP, initial=initial)
        assert canon(fast) == canon(slow)
        assert len(fast) == 1

    def test_duplicate_variable_pattern(self, store):
        store.add(iri("loop"), NEAR, iri("loop"))
        bgp = [TriplePattern(Variable("x"), NEAR, Variable("x"))]
        planner = QueryPlanner()
        fast = list(planner.solutions(store, bgp))
        assert canon(fast) == canon(evaluate_bgp(store, bgp))
        assert fast == [{"x": iri("loop")}]

    def test_variable_predicate(self, store):
        bgp = [TriplePattern(iri("hotel"), Variable("p"), Variable("o"))]
        planner = QueryPlanner()
        fast = list(planner.solutions(store, bgp))
        assert canon(fast) == canon(evaluate_bgp(store, bgp))

    def test_empty_bgp_yields_initial_solution(self, store):
        planner = QueryPlanner()
        assert list(planner.solutions(store, [])) == [{}]


class TestIterBgpDispatch:
    def test_string_modes(self, store):
        greedy = list(iter_bgp(store, BGP, planner="greedy"))
        cost = list(iter_bgp(store, BGP, planner="cost"))
        assert canon(greedy) == canon(cost)

    def test_planner_instance(self, store):
        planner = QueryPlanner()
        list(iter_bgp(store, BGP, planner=planner))
        assert planner.snapshot().misses == 1

    def test_unknown_mode_rejected(self, store):
        with pytest.raises(ValueError):
            iter_bgp(store, BGP, planner="quantum")

    def test_streaming_stops_early(self, store):
        # Pulling two solutions must not run the join to completion:
        # the generator yields lazily off the explicit stack.
        it = iter_bgp(store, BGP, planner="cost")
        first = next(it)
        second = next(it)
        assert first != second


class TestExplain:
    def test_explain_reports_order_estimates_and_actuals(self, store):
        planner = QueryPlanner()
        explain = planner.explain(store, BGP)
        assert isinstance(explain, PlanExplain)
        assert explain.cache == "miss"
        assert sorted(explain.order) == [0, 1, 2]
        assert len(explain.steps) == 3
        assert explain.rows == len(evaluate_bgp(store, BGP))
        assert explain.steps[-1].output_rows == explain.rows
        rendered = explain.render()
        assert "join order" in rendered
        assert "plan cache: miss" in rendered
        assert f"rows: {explain.rows}" in rendered

    def test_explain_hits_cache_on_repeat(self, store):
        planner = QueryPlanner()
        planner.explain(store, BGP)
        assert planner.explain(store, BGP).cache == "hit"

    def test_explain_empty_bgp(self, store):
        explain = QueryPlanner().explain(store, [])
        assert explain.rows == 1
        assert "(empty)" in explain.render()


class TestObservability:
    def test_counters_mirror_into_registry(self, store):
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        planner = QueryPlanner()
        planner.bind_registry(registry)
        list(planner.solutions(store, BGP))
        list(planner.solutions(store, BGP))
        store.add(iri("extra"), TYPE, PLACE)
        list(planner.solutions(store, BGP))
        cache = registry.get("planner_plan_cache_total")
        assert cache.value(result="miss") == 1
        assert cache.value(result="hit") == 1
        assert cache.value(result="invalidated") == 1
        compiled = registry.get("planner_plans_compiled_total")
        assert compiled.value() == 2
        exposition = registry.expose()
        assert "planner_plan_cache_size 1" in exposition
