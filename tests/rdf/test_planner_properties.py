"""Property-based tests: compiled plans vs. the greedy evaluator, and
store statistics vs. recount-from-scratch.

The cost-based planner compiles specialized per-step closures and joins
in a statistics-chosen order; the greedy evaluator re-scores per level
and dispatches interpretively.  On random stores and random BGPs (with
filters and initial bindings) the two must produce the same solution
multiset.  Separately, the incrementally-maintained statistics must
equal a recount from the raw indexes after arbitrary add/remove churn.
"""

from hypothesis import given, settings, strategies as st

from repro.rdf.planner import QueryPlanner
from repro.rdf.sparql import FilterExpr, TriplePattern, evaluate_bgp
from repro.rdf.store import TripleStore
from repro.rdf.terms import IRI, Variable


IRIS = [IRI(f"http://x/{name}") for name in "abcdefg"]
PREDICATES = [IRI(f"http://x/p{i}") for i in range(3)]

triples = st.tuples(
    st.sampled_from(IRIS), st.sampled_from(PREDICATES),
    st.sampled_from(IRIS),
)

terms = st.one_of(
    st.sampled_from(IRIS),
    st.sampled_from([Variable(v) for v in "uvwxyz"]),
)
pattern_predicates = st.one_of(
    st.sampled_from(PREDICATES),
    st.sampled_from([Variable(v) for v in "pq"]),
)
patterns = st.builds(TriplePattern, terms, pattern_predicates, terms)


def canon(solutions):
    return sorted(
        tuple(sorted((k, str(v)) for k, v in s.items()))
        for s in solutions
    )


class TestCompiledAgainstGreedy:
    @given(st.lists(triples, max_size=25),
           st.lists(patterns, min_size=1, max_size=4))
    @settings(max_examples=150, deadline=None)
    def test_bgp_join_agrees(self, data, bgp):
        store = TripleStore(data)
        compiled = list(QueryPlanner().solutions(store, bgp))
        greedy = evaluate_bgp(store, bgp)
        assert canon(compiled) == canon(greedy)

    @given(st.lists(triples, max_size=25),
           st.lists(patterns, min_size=1, max_size=3),
           st.sampled_from(IRIS))
    @settings(max_examples=80, deadline=None)
    def test_filtered_join_agrees(self, data, bgp, pinned):
        store = TripleStore(data)
        flt = FilterExpr("cmp", (
            "!=", FilterExpr("var", ("u",)),
            FilterExpr("term", (pinned,)),
        ))
        compiled = list(
            QueryPlanner().solutions(store, bgp, filters=[flt])
        )
        greedy = evaluate_bgp(store, bgp, filters=[flt])
        assert canon(compiled) == canon(greedy)

    @given(st.lists(triples, max_size=25),
           st.lists(patterns, min_size=1, max_size=3),
           st.sampled_from(IRIS))
    @settings(max_examples=80, deadline=None)
    def test_initial_bindings_agree(self, data, bgp, pinned):
        store = TripleStore(data)
        initial = {"u": pinned}
        compiled = list(
            QueryPlanner().solutions(store, bgp, initial=initial)
        )
        greedy = evaluate_bgp(store, bgp, initial=initial)
        assert canon(compiled) == canon(greedy)

    @given(st.lists(triples, min_size=5, max_size=30),
           st.lists(patterns, min_size=1, max_size=3),
           st.lists(triples, min_size=1, max_size=5))
    @settings(max_examples=60, deadline=None)
    def test_cached_plan_survives_mutation(self, data, bgp, churn):
        # Warm the cache, mutate the store, re-run: the invalidated
        # plan must be rebuilt, never silently reused.
        store = TripleStore(data)
        planner = QueryPlanner()
        list(planner.solutions(store, bgp))
        for s, p, o in churn:
            if not store.remove(s, p, o):
                store.add(s, p, o)
        compiled = list(planner.solutions(store, bgp))
        greedy = evaluate_bgp(store, bgp)
        assert canon(compiled) == canon(greedy)


def recount(store):
    """Per-predicate statistics recomputed from the raw indexes."""
    stats = {}
    for p, by_o in store._pos.items():
        triples = sum(len(subjects) for subjects in by_o.values())
        subjects = {s for subjects in by_o.values() for s in subjects}
        stats[p] = (triples, len(subjects), len(by_o))
    return stats


class TestStatsConsistency:
    @given(st.lists(triples, max_size=40),
           st.lists(triples, max_size=40))
    @settings(max_examples=120, deadline=None)
    def test_stats_match_recount_after_churn(self, adds, removes):
        store = TripleStore()
        for s, p, o in adds:
            store.add(s, p, o)
        for s, p, o in removes:
            store.remove(s, p, o)
        snap = store.stats()
        assert snap.size == len(store)
        assert snap.distinct_subjects == len(store._spo)
        assert snap.distinct_objects == len(store._osp)
        expected = recount(store)
        got = {
            p: (ps.triples, ps.distinct_subjects, ps.distinct_objects)
            for p, ps in snap.predicates.items()
        }
        assert got == expected

    @given(st.lists(triples, max_size=40))
    @settings(max_examples=60, deadline=None)
    def test_epoch_strictly_tracks_mutations(self, ops):
        store = TripleStore()
        epoch = store.epoch
        for s, p, o in ops:
            changed = (
                store.remove(s, p, o) if (s, p, o) in store
                else store.add(s, p, o)
            )
            assert changed
            assert store.epoch == epoch + 1
            epoch = store.epoch

    @given(st.lists(triples, max_size=30),
           st.sampled_from(PREDICATES))
    @settings(max_examples=80, deadline=None)
    def test_estimate_bounds(self, data, p):
        # Estimates are sanity-bounded: never negative, exact for
        # fully-unbound per-predicate patterns, zero for absent ones.
        store = TripleStore(data)
        n = store.count(None, p, None)
        assert store.estimate(False, p, False) == float(n)
        if n == 0:
            assert store.estimate(True, p, True) == 0.0
        else:
            for s_bound in (False, True):
                for o_bound in (False, True):
                    est = store.estimate(s_bound, p, o_bound)
                    assert 0.0 < est <= float(n)
