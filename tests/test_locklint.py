"""tools/locklint.py: the ast-based lock-discipline checker."""

import importlib.util
import json
from pathlib import Path

import pytest

_SPEC = importlib.util.spec_from_file_location(
    "locklint",
    Path(__file__).resolve().parents[1] / "tools" / "locklint.py",
)
locklint = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(locklint)

MIXED = '''\
import threading

class Counter:
    def __init__(self):
        self._lock = threading.Lock()
        self.value = 0          # constructor: exempt

    def bump(self):
        with self._lock:
            self.value += 1

    def reset(self):
        self.value = 0          # bare: the finding
'''


def write(tmp_path, source, name="mod.py"):
    path = tmp_path / name
    path.write_text(source)
    return str(path)


class TestFindings:
    def test_mixed_discipline_is_a_finding(self, tmp_path):
        findings = locklint.scan_file(write(tmp_path, MIXED))
        assert len(findings) == 1
        f = findings[0]
        assert (f["class"], f["attr"]) == ("Counter", "value")
        assert f["locked"] == [("bump", 10)]
        assert f["bare"] == [("reset", 13)]
        assert not f["allowed"]

    def test_constructor_mutations_are_exempt(self, tmp_path):
        source = MIXED.replace("    def reset(self):\n"
                               "        self.value = 0          "
                               "# bare: the finding\n", "")
        assert locklint.scan_file(write(tmp_path, source)) == []

    def test_always_bare_is_not_a_finding(self, tmp_path):
        findings = locklint.scan_file(write(tmp_path, '''\
class Plain:
    def set(self, v):
        self.value = v

    def clear(self):
        self.value = None
'''))
        assert findings == []

    def test_lock_attribute_assignment_is_ignored(self, tmp_path):
        findings = locklint.scan_file(write(tmp_path, '''\
import threading

class Swapper:
    def relock(self):
        with self._lock:
            self._lock = threading.Lock()

    def other(self):
        self._lock = threading.Lock()
'''))
        assert findings == []

    def test_tuple_targets_are_unpacked(self, tmp_path):
        findings = locklint.scan_file(write(tmp_path, '''\
class Pair:
    def locked(self):
        with self._lock:
            self.a, self.b = 1, 2

    def bare(self):
        self.a = 0
'''))
        assert [f["attr"] for f in findings] == ["a"]

    def test_augassign_and_delete_count(self, tmp_path):
        findings = locklint.scan_file(write(tmp_path, '''\
class Acc:
    def locked(self):
        with self._lock:
            self.total += 1

    def bare(self):
        del self.total
'''))
        assert [f["attr"] for f in findings] == ["total"]

    def test_nested_function_does_not_leak_self(self, tmp_path):
        # The closure's ``self`` is a different object; only the
        # method-level bare mutation would count, and there is none.
        findings = locklint.scan_file(write(tmp_path, '''\
class Host:
    def locked(self):
        with self._lock:
            self.n = 1

    def spawn(self):
        def helper(self):
            self.n = 2
        return helper
'''))
        assert findings == []

    def test_nested_lock_attribute_chain_detected(self, tmp_path):
        findings = locklint.scan_file(write(tmp_path, '''\
class Deep:
    def locked(self):
        with self._state._lock:
            self.n = 1

    def bare(self):
        self.n = 2
'''))
        assert [f["attr"] for f in findings] == ["n"]


class TestCLI:
    def test_exit_one_on_finding(self, tmp_path, capsys):
        path = write(tmp_path, MIXED)
        assert locklint.main([path]) == 1
        out = capsys.readouterr().out
        assert "error [lock-discipline]" in out
        assert "Counter.value" in out

    def test_allowlisted_finding_is_warn_only(self, tmp_path, capsys,
                                              monkeypatch):
        monkeypatch.setitem(
            locklint.ALLOWLIST, ("Counter", "value"), "test fixture"
        )
        path = write(tmp_path, MIXED)
        assert locklint.main([path]) == 0
        out = capsys.readouterr().out
        assert "warning [lock-discipline]" in out
        assert "allowlisted: test fixture" in out

    def test_report_json(self, tmp_path, capsys):
        path = write(tmp_path, MIXED)
        report = tmp_path / "counts.json"
        locklint.main([path, "--report", str(report)])
        counts = json.loads(report.read_text())
        assert counts == {
            "files": 1,
            "errors": 1,
            "warnings": 0,
            "findings": [{
                "file": path,
                "class": "Counter",
                "attr": "value",
                "allowed": False,
            }],
        }

    def test_directory_scan(self, tmp_path, capsys):
        write(tmp_path, MIXED, "a.py")
        write(tmp_path, "x = 1\n", "b.py")
        assert locklint.main([str(tmp_path)]) == 1
        assert "2 file(s) scanned: 1 error(s)" in (
            capsys.readouterr().out
        )


class TestRepoIsClean:
    def test_concurrent_packages_pass(self, capsys):
        # The CI gate: the three concurrent packages have no
        # unallowlisted mixed-discipline attribute.
        root = Path(__file__).resolve().parents[1]
        status = locklint.main([
            str(root / "src" / "repro" / "service"),
            str(root / "src" / "repro" / "obs"),
            str(root / "src" / "repro" / "resilience"),
        ])
        assert status == 0, capsys.readouterr().out
