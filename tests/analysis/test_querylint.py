"""QueryLint: one dedicated test per rule, plus corpus cleanliness."""

import pytest

from repro.analysis import QueryLint, RuleRegistry, Severity
from repro.analysis.querylint import QUERY_RULES, query_locations
from repro.data.corpus import CORPUS
from repro.data.ontologies import load_merged_ontology
from repro.oassisql import parse_oassisql, print_oassisql


@pytest.fixture(scope="module")
def ontology():
    return load_merged_ontology()


@pytest.fixture
def linter():
    return QueryLint()


def lint_text(linter, text):
    return linter.lint(parse_oassisql(text, validate=False))


class TestDataflowRules:
    def test_empty_query(self, linter):
        report = lint_text(linter, "SELECT VARIABLES")
        assert "empty-query" in report.rules_fired()
        assert report.has_errors

    def test_select_unknown_variable(self, linter):
        report = lint_text(
            linter,
            "SELECT $z\nWHERE\n{$x instanceOf Place}",
        )
        fired = report.rules_fired()
        assert "select-unknown-variable" in fired
        assert "$z" in report.errors[0].message

    def test_satisfying_unbound_variable(self, linter):
        report = lint_text(
            linter,
            "SELECT VARIABLES\nSATISFYING\n{Paris visit $y}\n"
            "WITH SUPPORT THRESHOLD = 0.1",
        )
        assert "satisfying-unbound-variable" in report.rules_fired()

    def test_where_bound_satisfying_variable_is_clean(self, linter):
        report = lint_text(
            linter,
            "SELECT VARIABLES\nWHERE\n{$x instanceOf Place}\n"
            "SATISFYING\n{Paris visit $x}\nWITH SUPPORT THRESHOLD = 0.1",
        )
        assert "satisfying-unbound-variable" not in report.rules_fired()

    def test_open_fact_variable_is_crowd_bound(self, linter):
        # "[] buy $x" is the paper's open fact: the crowd binds $x.
        report = lint_text(
            linter,
            "SELECT VARIABLES\nSATISFYING\n{[] buy $x}\n"
            "WITH SUPPORT THRESHOLD = 0.1",
        )
        assert report.ok

    def test_locally_joined_variable_is_bound(self, linter):
        report = lint_text(
            linter,
            "SELECT VARIABLES\nSATISFYING\n"
            "{Alice visit $x.\n$x during Fall}\n"
            "WITH SUPPORT THRESHOLD = 0.1",
        )
        assert "satisfying-unbound-variable" not in report.rules_fired()


class TestWhereShapeRules:
    def test_where_cartesian_product(self, linter):
        report = lint_text(
            linter,
            "SELECT VARIABLES\nWHERE\n"
            "{$x instanceOf Place.\n$y instanceOf Dish}",
        )
        assert "where-cartesian-product" in report.rules_fired()

    def test_joined_where_is_connected(self, linter):
        report = lint_text(
            linter,
            "SELECT VARIABLES\nWHERE\n"
            "{$x instanceOf Place.\n$x near $y.\n$y instanceOf Hotel}",
        )
        assert "where-cartesian-product" not in report.rules_fired()

    def test_where_ground_triple(self, linter):
        report = lint_text(
            linter,
            "SELECT VARIABLES\nWHERE\n"
            "{Paris locatedIn France.\n$x instanceOf Place}",
        )
        assert "where-ground-triple" in report.rules_fired()

    def test_where_duplicate_triple(self, linter):
        report = lint_text(
            linter,
            "SELECT VARIABLES\nWHERE\n"
            "{$x instanceOf Place.\n$x instanceOf Place}",
        )
        assert "where-duplicate-triple" in report.rules_fired()


class TestTermRules:
    def test_anything_in_where(self, linter):
        report = lint_text(
            linter,
            "SELECT VARIABLES\nWHERE\n{[] instanceOf Place}",
        )
        assert "anything-in-where" in report.rules_fired()
        assert report.has_errors

    def test_anything_sole_terms(self, linter):
        report = lint_text(
            linter,
            "SELECT VARIABLES\nSATISFYING\n{[] visit []}\n"
            "WITH SUPPORT THRESHOLD = 0.1",
        )
        assert "anything-sole-terms" in report.rules_fired()

    def test_invalid_predicate_term(self, linter):
        report = lint_text(
            linter,
            'SELECT VARIABLES\nSATISFYING\n{$x "likes" $y.\n'
            "$x knows $y}\nWITH SUPPORT THRESHOLD = 0.1",
        )
        assert "invalid-predicate-term" in report.rules_fired()

    def test_literal_subject(self, linter):
        report = lint_text(
            linter,
            'SELECT VARIABLES\nWHERE\n{"paris" instanceOf $x}',
        )
        assert "literal-subject" in report.rules_fired()


class TestSatisfyingSanityRules:
    def test_duplicate_fact_triple(self, linter):
        report = lint_text(
            linter,
            "SELECT VARIABLES\nSATISFYING\n"
            "{[] visit $x.\n[] visit $x}\n"
            "WITH SUPPORT THRESHOLD = 0.1",
        )
        assert "duplicate-fact-triple" in report.rules_fired()

    def test_duplicate_fact_set(self, linter):
        report = lint_text(
            linter,
            "SELECT VARIABLES\nSATISFYING\n{[] visit $x}\n"
            "WITH SUPPORT THRESHOLD = 0.1\n"
            "AND\n{[] visit $x}\nWITH SUPPORT THRESHOLD = 0.1",
        )
        assert "duplicate-fact-set" in report.rules_fired()

    def test_contradictory_qualifiers(self, linter):
        report = lint_text(
            linter,
            "SELECT VARIABLES\nSATISFYING\n{[] visit $x}\n"
            "WITH SUPPORT THRESHOLD = 0.1\n"
            "AND\n{[] visit $x}\nORDER BY DESC(SUPPORT) LIMIT 5",
        )
        fired = report.rules_fired()
        assert "contradictory-qualifiers" in fired
        assert "duplicate-fact-set" not in fired
        assert report.has_errors

    def test_threshold_out_of_range(self, linter):
        for threshold in ("0", "1.5"):
            report = lint_text(
                linter,
                "SELECT VARIABLES\nSATISFYING\n{[] visit $x}\n"
                f"WITH SUPPORT THRESHOLD = {threshold}",
            )
            assert "threshold-out-of-range" in report.rules_fired()

    def test_limit_not_positive(self, linter):
        report = lint_text(
            linter,
            "SELECT VARIABLES\nSATISFYING\n{[] visit $x}\n"
            "ORDER BY DESC(SUPPORT) LIMIT 0",
        )
        assert "limit-not-positive" in report.rules_fired()


class TestOntologyRules:
    def test_unknown_predicate(self, ontology):
        linter = QueryLint(ontology=ontology)
        report = lint_text(
            linter,
            "SELECT VARIABLES\nWHERE\n{$x frobnicate Place}",
        )
        assert "unknown-predicate" in report.rules_fired()
        # WARNING, not ERROR: a partial ontology must not block queries.
        assert not report.has_errors

    def test_unknown_entity(self, ontology):
        linter = QueryLint(ontology=ontology)
        report = lint_text(
            linter,
            "SELECT VARIABLES\nWHERE\n{$x instanceOf Zorblax_Qux}",
        )
        assert "unknown-entity" in report.rules_fired()

    def test_known_terms_are_clean(self, ontology):
        linter = QueryLint(ontology=ontology)
        report = lint_text(
            linter,
            "SELECT VARIABLES\nWHERE\n{$x instanceOf Place.\n"
            "$x locatedIn Paris}",
        )
        assert report.ok

    def test_satisfying_predicates_are_exempt(self, ontology):
        # Crowd relations (visit, hike...) are not ontology properties.
        linter = QueryLint(ontology=ontology)
        report = lint_text(
            linter,
            "SELECT VARIABLES\nSATISFYING\n{[] zorblaxify $x}\n"
            "WITH SUPPORT THRESHOLD = 0.1",
        )
        assert "unknown-predicate" not in report.rules_fired()


class TestRegistryIntegration:
    def test_disabled_rule_is_silent(self):
        registry = RuleRegistry(QUERY_RULES)
        registry.disable("where-cartesian-product")
        linter = QueryLint(registry=registry)
        report = lint_text(
            linter,
            "SELECT VARIABLES\nWHERE\n"
            "{$x instanceOf Place.\n$y instanceOf Dish}",
        )
        assert "where-cartesian-product" not in report.rules_fired()

    def test_severity_override_applies(self):
        registry = RuleRegistry(QUERY_RULES)
        registry.override_severity("where-cartesian-product", "error")
        linter = QueryLint(registry=registry)
        report = lint_text(
            linter,
            "SELECT VARIABLES\nWHERE\n"
            "{$x instanceOf Place.\n$y instanceOf Dish}",
        )
        assert report.has_errors


class TestLocations:
    def test_paths_map_to_printed_lines(self):
        query = parse_oassisql(
            "SELECT VARIABLES\nWHERE\n"
            "{$x instanceOf Place.\n$x near Forest_Hotel,_Buffalo,_NY}\n"
            "SATISFYING\n{[] visit $x.\n[] in Fall}\n"
            "ORDER BY DESC(SUPPORT) LIMIT 5\n"
            "AND\n{[] hike $x}\nWITH SUPPORT THRESHOLD = 0.2"
        )
        printed = print_oassisql(query).splitlines()
        lines = query_locations(query)
        assert printed[lines["select"] - 1].startswith("SELECT")
        assert "instanceOf" in printed[lines["where[0]"] - 1]
        assert "near" in printed[lines["where[1]"] - 1]
        assert "visit" in printed[lines["satisfying[0].triples[0]"] - 1]
        assert "in Fall" in printed[lines["satisfying[0].triples[1]"] - 1]
        assert "ORDER BY" in printed[lines["satisfying[0].qualifier"] - 1]
        assert "hike" in printed[lines["satisfying[1].triples[0]"] - 1]
        assert "THRESHOLD" in printed[lines["satisfying[1].qualifier"] - 1]

    def test_diagnostics_carry_line_numbers(self, linter):
        report = lint_text(
            linter,
            "SELECT VARIABLES\nWHERE\n{[] instanceOf Place}",
        )
        d = report.errors[0]
        assert d.location.path == "where[0]"
        assert d.location.line == 3


class TestCorpusCleanliness:
    def test_every_gold_query_lints_clean(self, ontology):
        linter = QueryLint(ontology=ontology)
        checked = 0
        for entry in CORPUS:
            if not entry.gold_query:
                continue
            checked += 1
            report = linter.lint(
                parse_oassisql(entry.gold_query), subject=entry.id
            )
            assert report.ok, report.render()
        assert checked >= 10

    def test_rule_ids_are_unique_and_kebab_case(self):
        ids = [r.id for r in QUERY_RULES]
        assert len(ids) == len(set(ids))
        for rule_id in ids:
            assert rule_id == rule_id.lower()
            assert " " not in rule_id

    def test_severity_table(self):
        severities = {r.id: r.severity for r in QUERY_RULES}
        assert severities["satisfying-unbound-variable"] is Severity.ERROR
        assert severities["where-cartesian-product"] is Severity.WARNING
        assert severities["unknown-predicate"] is Severity.WARNING
