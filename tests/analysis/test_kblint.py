"""OntologyLint: one dedicated firing test per rule, plus KB health.

The firing tests build minimal Turtle snapshots that trigger exactly
the targeted smell; the health tests pin the acceptance criterion that
every embedded snapshot (and the merged ontology) is ERROR-free.
"""

import pytest

from repro.analysis import OntologyLint
from repro.analysis.kblint import ONTOLOGY_RULES, _MEMO
from repro.analysis.registry import RuleRegistry
from repro.analysis.diagnostics import Severity
from repro.data.ontologies import (
    load_dbpedia,
    load_food,
    load_geo,
    load_merged_ontology,
)
from repro.rdf.ontology import KB, Ontology

PREFIX = (
    "@prefix kb: <http://repro.example/kb/> .\n"
    "@prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .\n"
)


def lint_turtle(text, registry=None):
    linter = OntologyLint(registry=registry)
    return linter.lint(Ontology.from_turtle(PREFIX + text))


class TestLexicalRules:
    def test_label_not_literal(self):
        report = lint_turtle("kb:A rdfs:label kb:B .\n")
        assert "label-not-literal" in report.rules_fired()
        assert report.has_errors

    def test_empty_label(self):
        report = lint_turtle('kb:A rdfs:label "!!!" .\n')
        assert "empty-label" in report.rules_fired()
        assert report.has_errors

    def test_missing_label(self):
        report = lint_turtle("kb:A kb:instanceOf kb:City .\n")
        assert "missing-label" in report.rules_fired()

    def test_duplicate_label(self):
        report = lint_turtle(
            'kb:A rdfs:label "spring" .\n'
            'kb:B rdfs:label "Spring" .\n'
        )
        assert "duplicate-label" in report.rules_fired()

    def test_alias_duplicates_label(self):
        report = lint_turtle(
            'kb:A rdfs:label "park" ;\n'
            '    kb:alias "park" .\n'
        )
        assert "alias-duplicates-label" in report.rules_fired()

    def test_distinct_alias_is_clean(self):
        report = lint_turtle(
            'kb:A rdfs:label "park" ;\n'
            '    kb:alias "green space" .\n'
        )
        assert "alias-duplicates-label" not in report.rules_fired()


class TestReferenceRules:
    def test_class_as_literal(self):
        report = lint_turtle('kb:A kb:instanceOf "place" .\n')
        assert "class-as-literal" in report.rules_fired()
        assert report.has_errors

    def test_dangling_object(self):
        report = lint_turtle(
            "kb:A kb:instanceOf kb:City .\n"
            "kb:A kb:near kb:Ghost .\n"
        )
        assert "dangling-object" in report.rules_fired()
        assert report.has_errors

    def test_described_object_is_not_dangling(self):
        report = lint_turtle(
            "kb:A kb:instanceOf kb:City .\n"
            "kb:B kb:instanceOf kb:City .\n"
            "kb:A kb:near kb:B .\n"
        )
        assert "dangling-object" not in report.rules_fired()

    def test_orphan_entity(self):
        report = lint_turtle('kb:A rdfs:label "lonely" .\n')
        assert "orphan-entity" in report.rules_fired()

    def test_untyped_entity(self):
        report = lint_turtle(
            "kb:A kb:near kb:B .\n"
            "kb:B kb:instanceOf kb:City .\n"
        )
        assert "untyped-entity" in report.rules_fired()

    def test_self_reference(self):
        report = lint_turtle(
            "kb:A kb:instanceOf kb:City .\n"
            "kb:A kb:near kb:A .\n"
        )
        assert "self-reference" in report.rules_fired()


class TestPredicateRules:
    def test_near_duplicate_predicate_by_local_name(self):
        report = lint_turtle(
            "kb:A kb:locatedIn kb:C .\n"
            "kb:B kb:located_in kb:C .\n"
            "kb:C kb:instanceOf kb:City .\n"
        )
        assert "near-duplicate-predicate" in report.rules_fired()

    def test_near_duplicate_predicate_by_label(self):
        report = lint_turtle(
            'kb:sits rdfs:label "located" .\n'
            'kb:rests rdfs:label "located" .\n'
            "kb:A kb:sits kb:C .\n"
            "kb:B kb:rests kb:C .\n"
            "kb:C kb:instanceOf kb:City .\n"
        )
        assert "near-duplicate-predicate" in report.rules_fired()

    def test_mixed_object_kinds(self):
        report = lint_turtle(
            "kb:A kb:near kb:B .\n"
            "kb:B kb:instanceOf kb:City .\n"
            'kb:C kb:near "downtown" .\n'
        )
        assert "mixed-object-kinds" in report.rules_fired()

    def test_literal_type_inconsistency(self):
        report = lint_turtle(
            'kb:A kb:population "many" .\n'
            "kb:B kb:population 50 .\n"
        )
        assert "literal-type-inconsistency" in report.rules_fired()

    def test_uniform_literals_are_clean(self):
        report = lint_turtle(
            "kb:A kb:population 10 .\n"
            "kb:B kb:population 50 .\n"
        )
        assert "literal-type-inconsistency" not in report.rules_fired()


# 4 conforming subjects + 1 outlier: enough for inference (min 4
# typed, dominant class at exactly the 0.8 ratio floor).
_DOMAIN_SKEW = (
    "kb:a kb:instanceOf kb:City .\n"
    "kb:b kb:instanceOf kb:City .\n"
    "kb:c kb:instanceOf kb:City .\n"
    "kb:d kb:instanceOf kb:City .\n"
    "kb:e kb:instanceOf kb:Park .\n"
)


class TestInferenceRules:
    def test_inferred_domain_violation(self):
        report = lint_turtle(
            _DOMAIN_SKEW
            + "".join(
                f"kb:{s} kb:population {i} .\n"
                for i, s in enumerate("abcde")
            )
        )
        fired = report.rules_fired()
        assert "inferred-domain-violation" in fired
        [diag] = [
            d for d in report.diagnostics
            if d.rule == "inferred-domain-violation"
        ]
        assert "kb:e" in diag.message

    def test_inferred_range_violation(self):
        report = lint_turtle(
            _DOMAIN_SKEW
            + "".join(f"kb:x kb:near kb:{o} .\n" for o in "abcde")
        )
        assert "inferred-range-violation" in report.rules_fired()

    def test_too_few_samples_do_not_infer(self):
        report = lint_turtle(
            "kb:a kb:instanceOf kb:City .\n"
            "kb:b kb:instanceOf kb:City .\n"
            "kb:c kb:instanceOf kb:Park .\n"
            + "".join(
                f"kb:{s} kb:population {i} .\n"
                for i, s in enumerate("abc")
            )
        )
        assert "inferred-domain-violation" not in report.rules_fired()

    def test_heterogeneous_column_does_not_infer(self):
        report = lint_turtle(
            "kb:a kb:instanceOf kb:City .\n"
            "kb:b kb:instanceOf kb:City .\n"
            "kb:c kb:instanceOf kb:Park .\n"
            "kb:d kb:instanceOf kb:Park .\n"
            + "".join(
                f"kb:{s} kb:population {i} .\n"
                for i, s in enumerate("abcd")
            )
        )
        assert "inferred-domain-violation" not in report.rules_fired()


class TestGraphRules:
    def test_disconnected_islands(self):
        report = lint_turtle(
            "kb:a kb:near kb:b .\n"
            "kb:c kb:touches kb:d .\n"
        )
        fired = report.rules_fired()
        assert "disconnected-islands" in fired
        [diag] = [
            d for d in report.diagnostics
            if d.rule == "disconnected-islands"
        ]
        assert "2 unconnected islands" in diag.message

    def test_connected_graph_is_clean(self):
        report = lint_turtle(
            "kb:a kb:near kb:b .\n"
            "kb:b kb:near kb:c .\n"
        )
        assert "disconnected-islands" not in report.rules_fired()


class TestRegistryConfiguration:
    def test_disable_rule(self):
        registry = RuleRegistry(ONTOLOGY_RULES)
        registry.disable("missing-label")
        report = lint_turtle(
            "kb:A kb:instanceOf kb:City .\n", registry=registry
        )
        assert "missing-label" not in report.rules_fired()

    def test_override_severity(self):
        registry = RuleRegistry(ONTOLOGY_RULES)
        registry.override_severity("missing-label", Severity.ERROR)
        report = lint_turtle(
            "kb:A kb:instanceOf kb:City .\n", registry=registry
        )
        assert report.has_errors
        assert all(
            d.severity == Severity.ERROR
            for d in report.diagnostics if d.rule == "missing-label"
        )

    def test_rule_ids_are_unique(self):
        ids = [r.id for r in ONTOLOGY_RULES]
        assert len(ids) == len(set(ids))
        assert len(ids) >= 12

    def test_all_rules_are_ontology_family(self):
        assert all(r.analyzer == "ontology" for r in ONTOLOGY_RULES)


class TestMemoization:
    def test_frozen_snapshot_report_is_memoized(self):
        _MEMO.clear()
        ontology = load_geo()  # cached loader result, frozen
        linter = OntologyLint()
        first = linter.lint(ontology, subject="geo")
        assert len(_MEMO) == 1
        second = linter.lint(ontology, subject="geo")
        assert [d.rule for d in first.diagnostics] == [
            d.rule for d in second.diagnostics
        ]
        assert len(_MEMO) == 1

    def test_mutation_invalidates_memo(self):
        _MEMO.clear()
        ontology = load_geo().copy()
        linter = OntologyLint()
        linter.lint(ontology, subject="copy")
        store = ontology.store
        triple = next(iter(store.triples()))
        store.remove(*triple)
        linter.lint(Ontology(store), subject="copy")
        assert len(_MEMO) == 2  # epoch changed -> distinct key

    def test_registry_config_changes_memo_key(self):
        _MEMO.clear()
        ontology = load_geo()
        OntologyLint().lint(ontology, subject="geo")
        registry = RuleRegistry(ONTOLOGY_RULES)
        registry.disable("missing-label")
        OntologyLint(registry=registry).lint(ontology, subject="geo")
        assert len(_MEMO) == 2


class TestSnapshotHealth:
    """The acceptance gate: every embedded snapshot is ERROR-free."""

    @pytest.mark.parametrize("loader", [
        load_geo, load_dbpedia, load_food, load_merged_ontology,
    ])
    def test_snapshot_has_zero_errors(self, loader):
        report = OntologyLint().lint(loader())
        assert not report.has_errors, report.render()

    def test_seeded_deletion_fires_dangling_object(self):
        # Remove every description of an entity other facts point at:
        # the linter must notice the now-dangling reference.
        ontology = load_geo().copy()
        store = ontology.store
        victim = KB["Buffalo,_NY"]
        assert store.count(None, None, victim) > 0
        for triple in list(store.triples(victim, None, None)):
            store.remove(*triple)
        report = OntologyLint().lint(Ontology(store))
        fired = report.rules_fired()
        assert "dangling-object" in fired
        assert any(
            "Buffalo,_NY" in d.message
            for d in report.diagnostics if d.rule == "dangling-object"
        )
