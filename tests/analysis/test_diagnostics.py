"""The diagnostic core: severities, reports, and the rule registry."""

import pytest

from repro.analysis import (
    AnalysisReport,
    Diagnostic,
    Location,
    Rule,
    RuleRegistry,
    Severity,
    default_registry,
)
from repro.analysis.patternlint import PATTERN_RULES
from repro.analysis.querylint import QUERY_RULES
from repro.errors import LintConfigError


def diag(rule="r", severity=Severity.ERROR, message="m", **kw):
    return Diagnostic(rule=rule, severity=severity, message=message, **kw)


class TestSeverity:
    def test_ordering(self):
        assert Severity.INFO < Severity.WARNING < Severity.ERROR

    def test_str_is_lowercase_name(self):
        assert str(Severity.WARNING) == "warning"

    def test_parse_accepts_names_and_members(self):
        assert Severity.parse("error") is Severity.ERROR
        assert Severity.parse("Info") is Severity.INFO
        assert Severity.parse(Severity.WARNING) is Severity.WARNING

    def test_parse_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown severity"):
            Severity.parse("fatal")


class TestLocation:
    def test_str_with_line(self):
        assert str(Location("where[1]", line=3)) == "where[1] (line 3)"

    def test_str_without_line(self):
        assert str(Location("pattern p")) == "pattern p"


class TestDiagnostic:
    def test_render_includes_severity_rule_and_location(self):
        d = diag(rule="empty-query", location=Location("select", line=1),
                 hint="add a clause")
        text = d.render()
        assert "error [empty-query]" in text
        assert "select (line 1)" in text
        assert "hint: add a clause" in text


class TestAnalysisReport:
    def test_empty_report_is_ok(self):
        report = AnalysisReport(subject="q")
        assert report.ok
        assert not report.has_errors
        assert report.max_severity is None
        assert report.counts() == {"error": 0, "warning": 0, "info": 0}
        assert "no diagnostics" in report.render()

    def test_severity_buckets(self):
        report = AnalysisReport()
        report.add(diag(severity=Severity.ERROR))
        report.add(diag(rule="w", severity=Severity.WARNING))
        report.add(diag(rule="i", severity=Severity.INFO))
        assert len(report.errors) == 1
        assert len(report.warnings) == 1
        assert len(report.infos) == 1
        assert report.has_errors
        assert report.max_severity is Severity.ERROR

    def test_rules_fired_deduplicates_in_order(self):
        report = AnalysisReport()
        for rule in ("b", "a", "b"):
            report.add(diag(rule=rule))
        assert report.rules_fired() == ["b", "a"]

    def test_summary_counts(self):
        report = AnalysisReport(subject="my query")
        report.add(diag(severity=Severity.WARNING))
        assert report.summary() == (
            "my query: 0 error(s), 1 warning(s), 0 info(s)"
        )


class TestRuleRegistry:
    @pytest.fixture
    def registry(self):
        return RuleRegistry([
            Rule("one", "query", Severity.ERROR, "first"),
            Rule("two", "query", Severity.WARNING, "second"),
        ])

    def test_register_rejects_duplicates(self, registry):
        with pytest.raises(LintConfigError, match="already registered"):
            registry.register(Rule("one", "query", Severity.INFO, "dup"))

    def test_unknown_rule_raises(self, registry):
        with pytest.raises(LintConfigError, match="unknown rule"):
            registry.severity_of("nope")

    def test_emit_uses_default_severity(self, registry):
        report = AnalysisReport()
        d = registry.emit(report, "two", "msg")
        assert d.severity is Severity.WARNING
        assert report.diagnostics == [d]

    def test_disable_suppresses_emission(self, registry):
        report = AnalysisReport()
        registry.disable("one")
        assert registry.emit(report, "one", "msg") is None
        assert report.ok
        registry.enable("one")
        assert registry.emit(report, "one", "msg") is not None

    def test_severity_override(self, registry):
        registry.override_severity("one", "warning")
        report = AnalysisReport()
        d = registry.emit(report, "one", "msg")
        assert d.severity is Severity.WARNING
        registry.reset_overrides()
        assert registry.severity_of("one") is Severity.ERROR

    def test_rules_filtered_by_analyzer(self, registry):
        assert [r.id for r in registry.rules("query")] == ["one", "two"]
        assert registry.rules("pattern") == []


class TestDefaultRegistry:
    def test_holds_both_analyzers(self):
        registry = default_registry()
        query_ids = {r.id for r in registry.rules("query")}
        pattern_ids = {r.id for r in registry.rules("pattern")}
        assert query_ids == {r.id for r in QUERY_RULES}
        assert pattern_ids == {r.id for r in PATTERN_RULES}

    def test_rule_counts_meet_the_floor(self):
        # The acceptance criterion: >= 10 rules across both linters.
        assert len(QUERY_RULES) + len(PATTERN_RULES) >= 10
        assert len(QUERY_RULES) >= 6
        assert len(PATTERN_RULES) >= 4
