"""The batch lint runner and the ``--lint`` / ``--lint-patterns`` CLI."""

import json

import pytest

from repro.__main__ import main
from repro.analysis import (
    LintOutcome,
    lint_pattern_bank,
    lint_query_source,
    lint_questions,
)
from repro.core.pipeline import NL2CM
from repro.data.corpus import CORPUS

#: Hand-crafted broken queries, each expected to fire a distinct rule.
BAD_QUERIES = {
    "anything-in-where":
        "SELECT VARIABLES\nWHERE\n{[] instanceOf Place}",
    "satisfying-unbound-variable":
        "SELECT VARIABLES\nSATISFYING\n{Paris visit $y}\n"
        "WITH SUPPORT THRESHOLD = 0.1",
    "select-unknown-variable":
        "SELECT $z\nWHERE\n{$x instanceOf Place}",
    "threshold-out-of-range":
        "SELECT VARIABLES\nSATISFYING\n{[] visit $x}\n"
        "WITH SUPPORT THRESHOLD = 7",
    "limit-not-positive":
        "SELECT VARIABLES\nSATISFYING\n{[] visit $x}\n"
        "ORDER BY DESC(SUPPORT) LIMIT 0",
    "anything-sole-terms":
        "SELECT VARIABLES\nSATISFYING\n{[] visit []}\n"
        "WITH SUPPORT THRESHOLD = 0.1",
    "contradictory-qualifiers":
        "SELECT VARIABLES\nSATISFYING\n{[] visit $x}\n"
        "WITH SUPPORT THRESHOLD = 0.1\n"
        "AND\n{[] visit $x}\nORDER BY DESC(SUPPORT) LIMIT 5",
}


class TestRunnerFunctions:
    def test_lint_query_source_clean(self):
        outcome = lint_query_source(
            "SELECT VARIABLES\nSATISFYING\n{[] visit $x}\n"
            "WITH SUPPORT THRESHOLD = 0.1"
        )
        assert outcome.exit_code == 0
        assert outcome.errors == 0

    @pytest.mark.parametrize("rule", sorted(BAD_QUERIES))
    def test_lint_query_source_fires_rule(self, rule):
        outcome = lint_query_source(BAD_QUERIES[rule])
        assert outcome.exit_code == 1
        fired = {
            d.rule for r in outcome.reports for d in r.diagnostics
        }
        assert rule in fired

    def test_syntax_error_becomes_diagnostic(self):
        outcome = lint_query_source("SELECT VARIABLES\nWHERE {$x")
        assert outcome.exit_code == 1
        assert outcome.reports[0].diagnostics[0].rule == "syntax-error"

    def test_lint_pattern_bank_defaults_clean(self):
        outcome = lint_pattern_bank()
        assert outcome.exit_code == 0

    def test_lint_questions(self):
        nl2cm = NL2CM()
        outcome = lint_questions(
            ["Where do you visit in Buffalo?",
             "How should I store coffee?"],  # second is unsupported
            nl2cm,
        )
        assert len(outcome.reports) == 2
        assert outcome.reports[0].ok
        failed = outcome.reports[1]
        assert failed.diagnostics[0].rule == "translation-failed"
        assert outcome.exit_code == 1

    def test_counts_serialization(self):
        outcome = lint_query_source(BAD_QUERIES["anything-in-where"])
        counts = outcome.counts()
        assert counts["subjects"] == 1
        assert counts["errors"] >= 1
        assert "anything-in-where" in counts["rules"]
        json.dumps(counts)  # must be JSON-serializable as-is

    def test_outcome_render_ends_with_summary(self):
        outcome = LintOutcome()
        assert "0 subject(s)" in outcome.render()


class TestCLI:
    def test_lint_clean_query_file_exits_zero(self, tmp_path, capsys):
        path = tmp_path / "good.oql"
        path.write_text(
            "SELECT VARIABLES\nWHERE\n{$x instanceOf Place}\n"
            "SATISFYING\n{[] visit $x}\nWITH SUPPORT THRESHOLD = 0.1\n"
        )
        assert main(["--lint", str(path)]) == 0
        assert "0 error(s)" in capsys.readouterr().out

    @pytest.mark.parametrize("rule", sorted(BAD_QUERIES))
    def test_lint_bad_query_file_exits_nonzero(self, rule, tmp_path,
                                               capsys):
        path = tmp_path / "bad.oql"
        path.write_text(BAD_QUERIES[rule] + "\n")
        assert main(["--lint", str(path)]) == 1
        assert f"[{rule}]" in capsys.readouterr().out

    def test_lint_question_batch(self, tmp_path, capsys):
        path = tmp_path / "questions.txt"
        path.write_text(
            "# a comment\n"
            "Where do you visit in Buffalo?\n"
            "\n"
            "What souvenirs should we buy in Las Vegas?\n"
        )
        assert main(["--lint", str(path)]) == 0
        out = capsys.readouterr().out
        assert "2 subject(s)" in out

    def test_lint_patterns_flag(self, capsys):
        assert main(["--lint-patterns"]) == 0
        assert "pattern bank" in capsys.readouterr().out

    def test_lint_report_written(self, tmp_path, capsys):
        query = tmp_path / "bad.oql"
        query.write_text(BAD_QUERIES["anything-in-where"] + "\n")
        report_path = tmp_path / "counts.json"
        status = main([
            "--lint", str(query), "--lint-report", str(report_path),
        ])
        assert status == 1
        counts = json.loads(report_path.read_text())
        assert counts["errors"] >= 1
        assert "anything-in-where" in counts["rules"]

    def test_lint_missing_file_exits_two(self, capsys):
        assert main(["--lint", "/nonexistent/nope.oql"]) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_lint_empty_question_file_exits_two(self, tmp_path, capsys):
        path = tmp_path / "empty.txt"
        path.write_text("# only a comment\n")
        assert main(["--lint", str(path)]) == 2


class TestCorpusAcceptance:
    def test_every_gold_query_file_lints_clean(self, tmp_path):
        # The CI job's contract: --lint exits 0 on each corpus query.
        for entry in CORPUS:
            if not entry.gold_query:
                continue
            outcome = lint_query_source(
                entry.gold_query, subject=entry.id
            )
            assert outcome.exit_code == 0, outcome.render()
