"""KB lint wiring: pipeline gate, service counters, admin panel, CLI.

The analyzer itself is covered in test_kblint/test_scenariolint; this
file pins every layer the ``kb_lint`` mode threads through, mirroring
what test_integration does for query lint.
"""

import json

import pytest

from repro.__main__ import main
from repro.core.pipeline import NL2CM
from repro.errors import KBLintError
from repro.rdf.ontology import Ontology
from repro.service import TranslationService
from repro.ui.admin import render_service_stats

BROKEN_TTL = """\
@prefix kb: <http://repro.example/kb/> .
@prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
kb:Place rdfs:label kb:Oops .
kb:Buffalo kb:instanceOf kb:Place ;
    rdfs:label "buffalo" .
"""

ONTOLOGY_TTL = """\
@prefix kb: <http://repro.example/kb/> .
@prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
kb:Place rdfs:label "place" .
kb:Buffalo kb:instanceOf kb:Place ;
    rdfs:label "buffalo" .
"""

PATTERNS = """\
PATTERN opinion TYPE lexical ANCHOR $x
filter(LEMMA($x) in V_opinion)
"""


class TestPipelineGate:
    def test_default_warn_mode_keeps_the_report(self):
        nl2cm = NL2CM()
        assert nl2cm.kb_lint_mode == "warn"
        report = nl2cm.kb_lint_report
        assert report is not None
        assert not report.has_errors  # embedded KB is ERROR-free
        assert report.subject == "knowledge base"

    def test_off_mode_skips_the_analysis(self):
        nl2cm = NL2CM(kb_lint="off")
        assert nl2cm.kb_lint_report is None

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError, match="kb_lint"):
            NL2CM(kb_lint="loud")

    def test_error_mode_fails_fast_on_broken_kb(self):
        with pytest.raises(KBLintError) as exc:
            NL2CM(
                ontology=Ontology.from_turtle(BROKEN_TTL),
                kb_lint="error",
            )
        report = exc.value.report
        assert report.has_errors
        assert "label-not-literal" in report.rules_fired()
        assert "label-not-literal" in str(exc.value)

    def test_warn_mode_tolerates_broken_kb(self):
        nl2cm = NL2CM(
            ontology=Ontology.from_turtle(BROKEN_TTL), kb_lint="warn"
        )
        assert nl2cm.kb_lint_report.has_errors

    def test_error_mode_passes_on_clean_kb(self):
        nl2cm = NL2CM(kb_lint="error")
        assert not nl2cm.kb_lint_report.has_errors

    def test_report_covers_patterns_too(self):
        # The construction-time gate lints the ontology AND the
        # pattern bank; pattern diagnostics land in the same report.
        nl2cm = NL2CM()
        families = {
            d.rule for d in nl2cm.kb_lint_report.diagnostics
        }
        assert families  # embedded KB has known warnings/infos


class TestServiceCounters:
    @pytest.fixture(scope="class")
    def service(self):
        return TranslationService(NL2CM())

    def test_stats_mirror_the_construction_report(self, service):
        stats = service.stats()
        report = service.nl2cm.kb_lint_report
        assert stats.kb_lint_errors == len(report.errors)
        assert stats.kb_lint_warnings == len(report.warnings)
        assert stats.kb_lint_infos == len(report.infos)
        assert stats.kb_lint_warnings > 0

    def test_reset_stats_preserves_kb_gauges(self, service):
        before = service.stats()
        service.reset_stats()
        after = service.stats()
        assert after.kb_lint_warnings == before.kb_lint_warnings
        assert after.kb_lint_infos == before.kb_lint_infos

    def test_metrics_exposition_carries_the_gauge(self, service):
        text = service.registry.expose()
        assert "nl2cm_kb_lint_diagnostics" in text

    def test_admin_panel_shows_kb_lint_line(self, service):
        panel = render_service_stats(service.stats())
        assert "kb lint:" in panel

    def test_admin_panel_hides_zero_kb_lint(self):
        service = TranslationService(NL2CM(kb_lint="off"))
        panel = render_service_stats(service.stats())
        assert "kb lint:" not in panel


@pytest.fixture
def pack_dir(tmp_path):
    root = tmp_path / "demo"
    root.mkdir()
    (root / "base.ttl").write_text(ONTOLOGY_TTL)
    (root / "patterns.txt").write_text(PATTERNS)
    vocab = root / "vocabularies"
    vocab.mkdir()
    (vocab / "V_opinion.txt").write_text("like\nlove\n")
    (root / "corpus.json").write_text("[]")
    return root


class TestCLI:
    def test_lint_kb_exits_zero(self, capsys):
        assert main(["--lint-kb"]) == 0
        out = capsys.readouterr().out
        assert "geo.ttl" in out
        assert "scenario pack 'default'" in out

    def test_lint_kb_report_has_family_breakdown(self, tmp_path,
                                                 capsys):
        report_path = tmp_path / "counts.json"
        assert main(
            ["--lint-kb", "--lint-report", str(report_path)]
        ) == 0
        counts = json.loads(report_path.read_text())
        assert counts["errors"] == 0
        assert "ontology" in counts["families"]
        assert "scenario" in counts["families"]
        assert counts["families"]["ontology"]["rules"]

    def test_lint_pack_directory(self, pack_dir, capsys):
        assert main(["--lint-pack", str(pack_dir)]) == 0
        out = capsys.readouterr().out
        assert "pack 'demo'" in out

    def test_lint_pack_missing_directory_exits_two(self, tmp_path,
                                                   capsys):
        status = main(["--lint-pack", str(tmp_path / "nope")])
        assert status == 2
        assert "cannot load scenario pack" in capsys.readouterr().err

    def test_lint_pack_with_errors_exits_one(self, pack_dir, capsys):
        (pack_dir / "base.ttl").write_text(BROKEN_TTL)
        assert main(["--lint-pack", str(pack_dir)]) == 1
        assert "label-not-literal" in capsys.readouterr().out

    def test_lint_flags_compose_into_one_run(self, pack_dir, tmp_path,
                                             capsys):
        report_path = tmp_path / "counts.json"
        status = main([
            "--lint-patterns", "--lint-kb",
            "--lint-pack", str(pack_dir),
            "--lint-report", str(report_path),
        ])
        assert status == 0
        counts = json.loads(report_path.read_text())
        out = capsys.readouterr().out
        assert f"{counts['subjects']} subject(s)" in out
        assert counts["subjects"] >= 9  # bank + 6 KB + 3 pack subjects
