"""PatternLint: one dedicated test per rule, plus default-bank health."""

import pytest

from repro.analysis import PatternLint
from repro.analysis.patternlint import PATTERN_RULES
from repro.core.ixdetect import load_default_patterns
from repro.core.ixpatterns import IXPattern, PatternFilter, parse_patterns
from repro.data.vocabularies import Vocabulary, load_vocabularies


@pytest.fixture(scope="module")
def vocabularies():
    return load_vocabularies()


@pytest.fixture
def linter(vocabularies):
    return PatternLint(vocabularies=vocabularies)


def lint_text(linter, text):
    return linter.lint(parse_patterns(text))


class TestBankRules:
    def test_duplicate_pattern_name(self, linter):
        report = lint_text(
            linter,
            "PATTERN twin TYPE lexical ANCHOR $x\n"
            'filter(POS($x) = "verb")\n'
            "\n"
            "PATTERN twin TYPE lexical ANCHOR $x\n"
            'filter(POS($x) = "noun")\n',
        )
        assert "duplicate-pattern-name" in report.rules_fired()
        assert report.has_errors

    def test_overlapping_pattern_subsumption(self, linter):
        # Same shape; the filterless pattern matches a superset.
        report = lint_text(
            linter,
            "PATTERN narrow TYPE participant ANCHOR $v\n"
            "$v subject $y\n"
            "filter(LEMMA($y) in V_participant)\n"
            "\n"
            "PATTERN wide TYPE participant ANCHOR $w\n"
            "$w subject $z\n"
            "filter(LEMMA($z) in V_participant)\n",
        )
        assert "overlapping-pattern" in report.rules_fired()

    def test_different_filters_do_not_overlap(self, linter):
        report = lint_text(
            linter,
            "PATTERN a TYPE participant ANCHOR $v\n"
            "$v subject $y\n"
            "filter(LEMMA($y) in V_participant)\n"
            "\n"
            "PATTERN b TYPE participant ANCHOR $v\n"
            "$v subject $y\n"
            "filter(LEMMA($y) in V_modal)\n",
        )
        assert "overlapping-pattern" not in report.rules_fired()


class TestVariableRules:
    def test_filter_undeclared_variable(self, linter):
        report = lint_text(
            linter,
            "PATTERN p TYPE lexical ANCHOR $x\n"
            "$x nsubj $y\n"
            'filter(POS($z) = "noun" && POS($y) = "noun")\n',
        )
        assert "filter-undeclared-variable" in report.rules_fired()
        assert report.has_errors

    def test_edge_free_multi_variable(self, linter):
        # Unbuildable through parse_patterns (validate raises at load),
        # but PatternLint must still diagnose a directly-built pattern.
        pattern = IXPattern(
            name="bad",
            ix_type="lexical",
            anchor="x",
            edges=(),
            filter=PatternFilter("and", (
                PatternFilter("func", ("TEXT", "x")),
                PatternFilter("func", ("TEXT", "y")),
            )),
        )
        report = linter.lint([pattern])
        assert "edge-free-multi-variable" in report.rules_fired()

    def test_unconstrained_variable(self, linter):
        report = lint_text(
            linter,
            "PATTERN p TYPE lexical ANCHOR $x\n"
            "$x nsubj $y\n"
            'filter(POS($x) = "verb")\n',
        )
        assert "unconstrained-variable" in report.rules_fired()


class TestFilterRules:
    def test_unknown_vocabulary(self, linter):
        report = lint_text(
            linter,
            "PATTERN p TYPE lexical ANCHOR $x\n"
            "filter(LEMMA($x) in V_missing)\n",
        )
        assert "unknown-vocabulary" in report.rules_fired()
        assert report.has_errors

    def test_empty_vocabulary(self, vocabularies):
        vocabularies.register(Vocabulary("V_hollow", []))
        linter = PatternLint(vocabularies=vocabularies)
        report = lint_text(
            linter,
            "PATTERN p TYPE lexical ANCHOR $x\n"
            "filter(LEMMA($x) in V_hollow)\n",
        )
        assert "empty-vocabulary" in report.rules_fired()

    def test_no_vocabularies_skips_vocabulary_rules(self):
        linter = PatternLint()
        report = lint_text(
            linter,
            "PATTERN p TYPE lexical ANCHOR $x\n"
            "filter(LEMMA($x) in V_missing)\n",
        )
        assert "unknown-vocabulary" not in report.rules_fired()

    def test_unreachable_pos_class(self, linter):
        report = lint_text(
            linter,
            "PATTERN p TYPE lexical ANCHOR $x\n"
            'filter(POS($x) = "pronoun")\n',
        )
        assert "unreachable-pos-class" in report.rules_fired()

    def test_achievable_pos_class_is_clean(self, linter):
        report = lint_text(
            linter,
            "PATTERN p TYPE lexical ANCHOR $x\n"
            'filter(POS($x) = "adjective")\n',
        )
        assert "unreachable-pos-class" not in report.rules_fired()

    def test_contradictory_filter(self, linter):
        report = lint_text(
            linter,
            "PATTERN p TYPE lexical ANCHOR $x\n"
            'filter(LEMMA($x) = "eat" && LEMMA($x) = "drink")\n',
        )
        assert "contradictory-filter" in report.rules_fired()

    def test_disjunction_is_not_contradictory(self, linter):
        report = lint_text(
            linter,
            "PATTERN p TYPE lexical ANCHOR $x\n"
            'filter(LEMMA($x) = "eat" || LEMMA($x) = "drink")\n',
        )
        assert "contradictory-filter" not in report.rules_fired()


class TestStructureRules:
    def test_disconnected_pattern(self, linter):
        report = lint_text(
            linter,
            "PATTERN p TYPE participant ANCHOR $a\n"
            "$a nsubj $b\n"
            "$c dobj $d\n"
            "filter(LEMMA($b) in V_participant && "
            "LEMMA($c) in V_participant && LEMMA($d) in V_participant)\n",
        )
        assert "disconnected-pattern" in report.rules_fired()

    def test_connected_pattern_is_clean(self, linter):
        report = lint_text(
            linter,
            "PATTERN p TYPE participant ANCHOR $a\n"
            "$a nsubj $b\n"
            "$b dobj $c\n"
            "filter(LEMMA($c) in V_participant)\n",
        )
        assert "disconnected-pattern" not in report.rules_fired()


class TestDefaultBank:
    def test_default_patterns_lint_clean(self, linter):
        report = linter.lint(load_default_patterns())
        assert report.ok, report.render()

    def test_rule_ids_are_unique(self):
        ids = [r.id for r in PATTERN_RULES]
        assert len(ids) == len(set(ids))


class TestLoadTimeValidation:
    """parse_patterns must reject malformed patterns at load, by name."""

    def test_bad_type_rejected_at_parse(self):
        from repro.errors import PatternSyntaxError

        with pytest.raises(PatternSyntaxError, match="pattern p"):
            parse_patterns(
                "PATTERN p TYPE emotional ANCHOR $x\n"
                'filter(POS($x) = "verb")\n'
            )

    def test_unused_anchor_rejected_at_parse(self):
        from repro.errors import PatternSyntaxError

        with pytest.raises(PatternSyntaxError, match="pattern p"):
            parse_patterns(
                "PATTERN p TYPE lexical ANCHOR $missing\n"
                "$x nsubj $y\n"
                'filter(POS($x) = "verb")\n'
            )

    def test_edge_free_multi_variable_rejected_at_parse(self):
        from repro.errors import PatternSyntaxError

        with pytest.raises(PatternSyntaxError, match="pattern p"):
            parse_patterns(
                "PATTERN p TYPE lexical ANCHOR $x\n"
                'filter(TEXT($x) = "a" && TEXT($y) = "b")\n'
            )
