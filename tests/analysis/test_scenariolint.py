"""ScenarioLint: one firing test per cross-artifact rule.

Each test assembles a minimal in-memory :class:`ScenarioPack` seeded
with exactly one cross-artifact inconsistency; the health tests pin
that the embedded default pack carries zero ERROR diagnostics.
"""

from repro.analysis import ScenarioLint
from repro.analysis.scenariolint import SCENARIO_RULES
from repro.core.ixpatterns import parse_patterns
from repro.data.corpus import CorpusQuestion
from repro.data.scenario import ScenarioPack, default_pack
from repro.data.vocabularies import (
    Vocabulary,
    VocabularyRegistry,
    load_vocabularies,
)
from repro.rdf.ontology import Ontology

ONTOLOGY_TTL = """\
@prefix kb: <http://repro.example/kb/> .
@prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
kb:Place rdfs:label "place" .
kb:Buffalo kb:instanceOf kb:Place ;
    rdfs:label "buffalo" .
kb:visit rdfs:label "visit" .
kb:Buffalo kb:visit kb:Buffalo .
"""

PATTERNS = """\
PATTERN opinion TYPE lexical ANCHOR $x
filter(LEMMA($x) in V_opinion)
"""


def make_pack(corpus=(), vocabularies=None, patterns=PATTERNS):
    if vocabularies is None:
        vocabularies = VocabularyRegistry([
            Vocabulary("V_opinion", ["like", "love"]),
        ])
    return ScenarioPack(
        name="test",
        ontology=Ontology.from_turtle(ONTOLOGY_TTL),
        vocabularies=vocabularies,
        patterns=parse_patterns(patterns),
        corpus=tuple(corpus),
    )


def question(qid="q1", text="Where do you visit in Buffalo?", **kw):
    return CorpusQuestion(id=qid, text=text, domain="travel", **kw)


class TestCorpusRules:
    def test_duplicate_question_id(self):
        pack = make_pack([question("q1"), question("q1")])
        report = ScenarioLint().lint(pack)
        assert "duplicate-question-id" in report.rules_fired()
        assert report.has_errors

    def test_question_unverifiable(self):
        pack = make_pack([
            question(text="How should I store coffee?", supported=True),
        ])
        report = ScenarioLint().lint(pack)
        assert "question-unverifiable" in report.rules_fired()

    def test_unsupported_question_is_exempt(self):
        pack = make_pack([
            question(text="How should I store coffee?", supported=False,
                     reject_reason="non-crowd"),
        ])
        report = ScenarioLint().lint(pack)
        assert "question-unverifiable" not in report.rules_fired()


class TestGoldRules:
    def test_gold_query_syntax_error(self):
        pack = make_pack([
            question(gold_query="SELECT VARIABLES\nWHERE {$x"),
        ])
        report = ScenarioLint().lint(pack)
        assert "gold-query-syntax-error" in report.rules_fired()
        assert report.has_errors

    def test_gold_query_lint_error(self):
        pack = make_pack([
            question(gold_query=(
                "SELECT VARIABLES\nWHERE\n{[] instanceOf Place}"
            )),
        ])
        report = ScenarioLint().lint(pack)
        assert "gold-query-lint-error" in report.rules_fired()

    def test_clean_gold_query(self):
        pack = make_pack([
            question(gold_query=(
                "SELECT VARIABLES\nWHERE\n{$x instanceOf Place}\n"
                "SATISFYING\n{[] visit $x}\n"
                "WITH SUPPORT THRESHOLD = 0.1"
            )),
        ])
        report = ScenarioLint().lint(pack)
        fired = report.rules_fired()
        assert "gold-query-syntax-error" not in fired
        assert "gold-query-lint-error" not in fired

    def test_gold_entity_unresolved(self):
        pack = make_pack([
            question(gold_general_entities=("Atlantis",)),
        ])
        report = ScenarioLint().lint(pack)
        assert "gold-entity-unresolved" in report.rules_fired()
        assert report.has_errors

    def test_gold_entity_resolves_by_fact_participation(self):
        pack = make_pack([
            question(gold_general_entities=("Buffalo", "Place")),
        ])
        report = ScenarioLint().lint(pack)
        assert "gold-entity-unresolved" not in report.rules_fired()


class TestVocabularyRules:
    def test_unreachable_vocabulary_lemmas(self):
        vocabularies = VocabularyRegistry([
            Vocabulary("V_opinion", ["like", "love"]),
            Vocabulary("V_stray", ["meander"]),
        ])
        pack = make_pack(vocabularies=vocabularies)
        report = ScenarioLint().lint(pack)
        [diag] = [
            d for d in report.diagnostics
            if d.rule == "unreachable-vocabulary-lemmas"
        ]
        assert "V_stray" in diag.message
        assert "meander" in diag.message

    def test_vocabulary_drift_after_union_is_caught(self):
        # The packaged V_opinion is the union of V_positive/V_negative
        # built at load time; a lemma added to a half afterwards never
        # reaches a pattern.  That drift is this rule's reason to exist.
        vocabularies = load_vocabularies()
        positive = vocabularies["V_positive"]
        vocabularies.register(
            Vocabulary("V_positive", list(positive) + ["stupendous"])
        )
        pack = default_pack()
        pack.vocabularies = vocabularies
        report = ScenarioLint().lint(pack)
        assert any(
            d.rule == "unreachable-vocabulary-lemmas"
            and "stupendous" in d.message
            for d in report.diagnostics
        )

    def test_vocabulary_ontology_overlap(self):
        vocabularies = VocabularyRegistry([
            Vocabulary("V_opinion", ["like", "place"]),
        ])
        pack = make_pack(vocabularies=vocabularies)
        report = ScenarioLint().lint(pack)
        [diag] = [
            d for d in report.diagnostics
            if d.rule == "vocabulary-ontology-overlap"
        ]
        assert "place" in diag.message


class TestDefaultPackHealth:
    def test_default_pack_has_zero_errors(self):
        report = ScenarioLint().lint(default_pack())
        assert not report.has_errors, report.render()

    def test_default_pack_lemmas_all_reachable(self):
        report = ScenarioLint().lint(default_pack())
        assert (
            "unreachable-vocabulary-lemmas" not in report.rules_fired()
        )

    def test_rule_ids_are_unique(self):
        ids = [r.id for r in SCENARIO_RULES]
        assert len(ids) == len(set(ids))
        assert len(ids) >= 6

    def test_all_rules_are_scenario_family(self):
        assert all(r.analyzer == "scenario" for r in SCENARIO_RULES)
