"""Lint wiring: the pipeline stage and the serving-layer counters."""

from types import SimpleNamespace

import pytest

from repro.analysis import AnalysisReport, Diagnostic, Severity
from repro.core.pipeline import NL2CM, TranslationTrace
from repro.errors import QueryLintError
from repro.oassisql import parse_oassisql
from repro.service import TranslationService
from repro.ui.admin import render_analysis_report, render_service_stats

QUESTION = "Where do you visit in Buffalo?"

BROKEN_QUERY = parse_oassisql(
    "SELECT VARIABLES\nWHERE\n{[] instanceOf Place}", validate=False
)


@pytest.fixture(scope="module")
def nl2cm():
    return NL2CM()


class TestPipelineStage:
    def test_trace_contains_query_lint_stage(self, nl2cm):
        result = nl2cm.translate(QUESTION)
        stages = result.trace.stages()
        assert "query-lint" in stages
        # After composition, before the final query rendering.
        assert stages.index("query-composition") < stages.index(
            "query-lint"
        ) < stages.index("final-query")

    def test_clean_translation_carries_empty_report(self, nl2cm):
        result = nl2cm.translate(QUESTION)
        assert result.lint is not None
        assert result.lint.ok

    def test_error_mode_raises_on_broken_query(self, nl2cm, monkeypatch):
        monkeypatch.setattr(
            nl2cm.composer, "compose",
            lambda *a, **k: SimpleNamespace(query=BROKEN_QUERY),
        )
        with pytest.raises(QueryLintError) as excinfo:
            nl2cm.translate(QUESTION)
        report = excinfo.value.report
        assert "anything-in-where" in report.rules_fired()
        assert "anything-in-where" in str(excinfo.value)

    def test_warn_mode_keeps_report_without_raising(self, monkeypatch):
        nl2cm = NL2CM(lint="warn")
        monkeypatch.setattr(
            nl2cm.composer, "compose",
            lambda *a, **k: SimpleNamespace(query=BROKEN_QUERY),
        )
        result = nl2cm.translate(QUESTION)
        assert result.lint.has_errors
        assert "query-lint" in result.trace.stages()

    def test_off_mode_skips_the_stage(self):
        nl2cm = NL2CM(lint="off")
        result = nl2cm.translate(QUESTION)
        assert result.lint is None
        assert "query-lint" not in result.trace.stages()

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError, match="lint must be one of"):
            NL2CM(lint="loud")

    def test_lint_stage_is_cheap(self, nl2cm):
        result = nl2cm.translate(QUESTION)
        timings = result.trace.timings()
        assert timings["query-lint"] < result.trace.total_seconds()


def make_result(text, lint):
    trace = TranslationTrace()
    with trace.span("translate"):
        trace.add("query-lint", "(no diagnostics)", 0.001)
    return SimpleNamespace(
        text=text, query=None, query_text="SELECT VARIABLES",
        graph=None, ixs=[], composed=None, trace=trace, lint=lint,
    )


def error_report():
    report = AnalysisReport(subject="q")
    report.add(Diagnostic(
        rule="anything-in-where", severity=Severity.ERROR, message="bad",
    ))
    report.add(Diagnostic(
        rule="where-ground-triple", severity=Severity.WARNING,
        message="meh",
    ))
    return report


class FakeNL2CM:
    """Duck-typed translator: returns canned results per question."""

    def __init__(self, reports):
        self.interaction = SimpleNamespace(cache_fingerprint="fp")
        self.ontology = None
        self.reports = reports
        self.calls = 0

    def translate(self, text, provider=None):
        self.calls += 1
        outcome = self.reports[text]
        if isinstance(outcome, QueryLintError):
            raise outcome
        return make_result(text, outcome)


class TestServiceCounters:
    def test_lint_counters_accumulate(self):
        fake = FakeNL2CM({"q1": error_report()})
        service = TranslationService(fake, cache=None)
        service.translate("q1")
        stats = service.stats()
        assert stats.lint_errors == 1
        assert stats.lint_warnings == 1
        assert stats.lint_infos == 0

    def test_error_results_are_not_cached(self):
        fake = FakeNL2CM({"q1": error_report()})
        service = TranslationService(fake, cache=8)
        service.translate("q1")
        service.translate("q1")
        # Both calls ran the pipeline: the ERROR result was refused.
        assert fake.calls == 2
        assert service.stats().served_from_cache == 0

    def test_clean_results_are_cached(self):
        fake = FakeNL2CM({"q1": AnalysisReport(subject="q1")})
        service = TranslationService(fake, cache=8)
        service.translate("q1")
        service.translate("q1")
        assert fake.calls == 1
        assert service.stats().served_from_cache == 1

    def test_querylint_error_counts_diagnostics(self):
        fake = FakeNL2CM({"q1": QueryLintError(error_report())})
        service = TranslationService(fake, cache=8)
        with pytest.raises(QueryLintError):
            service.translate("q1")
        stats = service.stats()
        assert stats.errors == 1
        assert stats.lint_errors == 1
        assert stats.lint_warnings == 1

    def test_reset_clears_lint_counters(self):
        fake = FakeNL2CM({"q1": error_report()})
        service = TranslationService(fake, cache=None)
        service.translate("q1")
        service.reset_stats()
        assert service.stats().lint_errors == 0


class TestAdminRendering:
    def test_service_stats_panel_shows_lint_line(self):
        fake = FakeNL2CM({"q1": error_report()})
        service = TranslationService(fake, cache=None)
        service.translate("q1")
        panel = render_service_stats(service.stats())
        assert "lint diagnostics: 1 error(s)" in panel
        assert "query-lint" in panel

    def test_analysis_report_panel(self):
        panel = render_analysis_report(error_report())
        assert "== lint: q ==" in panel
        assert "anything-in-where" in panel
        assert "1 error(s), 1 warning(s)" in panel

    def test_empty_report_panel(self):
        panel = render_analysis_report(AnalysisReport(subject="fine"))
        assert "0 error(s)" in panel
