"""Tests for the ``python -m repro`` command-line interface."""

import subprocess
import sys

import pytest

from repro.__main__ import build_parser, main


class TestMainFunction:
    def test_translate_question(self, capsys):
        status = main(["Where do you visit in Buffalo?"])
        out = capsys.readouterr().out
        assert status == 0
        assert "SELECT VARIABLES" in out
        assert "[] visit $x" in out

    def test_admin_trace(self, capsys):
        status = main(["--admin", "Where do you visit in Buffalo?"])
        out = capsys.readouterr().out
        assert status == 0
        assert "nl-parsing" in out
        assert "final-query" in out

    def test_unsupported_question_exit_code(self, capsys):
        status = main(["How should I store coffee?"])
        err = capsys.readouterr().err
        assert status == 2
        assert "tip:" in err

    def test_execute_flag(self, capsys):
        status = main([
            "--execute", "--crowd-size", "40",
            "What are the most interesting places near Forest Hotel, "
            "Buffalo, we should visit in the fall?",
        ])
        out = capsys.readouterr().out
        assert status == 0
        assert "# crowd tasks:" in out
        assert "Delaware Park" in out

    def test_parser_defaults(self):
        args = build_parser().parse_args(["hello"])
        assert args.crowd_size == 120
        assert not args.execute
        assert args.planner == "cost"

    def test_explain_question_file(self, tmp_path, capsys):
        batch = tmp_path / "questions.txt"
        batch.write_text(
            "Where do you visit in Buffalo?\n"
            "Where do you visit in Buffalo?\n",
            "utf-8",
        )
        status = main(["--explain", str(batch)])
        out = capsys.readouterr().out
        assert status == 0
        assert "== query plan ==" in out
        assert "join order" in out
        # The repeated question reuses the first question's plan.
        assert "plan cache: miss" in out
        assert "plan cache: hit" in out

    def test_explain_query_file(self, tmp_path, capsys):
        query = tmp_path / "query.oql"
        query.write_text(
            "SELECT VARIABLES\n"
            "WHERE\n"
            "{$x instanceOf Place}\n"
            "SATISFYING\n"
            "{[] visit $x}\n"
            "WITH SUPPORT THRESHOLD = 0.1\n",
            "utf-8",
        )
        status = main(["--explain", str(query)])
        out = capsys.readouterr().out
        assert status == 0
        assert "plan cache: miss" in out
        assert "instanceOf" in out

    def test_explain_missing_file(self, capsys):
        status = main(["--explain", "/nonexistent/nope.txt"])
        assert status == 2
        assert "cannot read" in capsys.readouterr().err

    def test_planner_greedy_translates_identically(self, capsys):
        question = "Where do you visit in Buffalo?"
        assert main(["--planner", "greedy", question]) == 0
        greedy_out = capsys.readouterr().out
        assert main(["--planner", "cost", question]) == 0
        cost_out = capsys.readouterr().out
        assert greedy_out == cost_out


class TestServeMode:
    def test_parser_serve_defaults(self):
        args = build_parser().parse_args(["--serve"])
        assert args.serve
        assert args.port == 8080
        assert args.host == "127.0.0.1"
        assert args.shards == 2
        assert args.max_pending == 64
        assert args.start_method == "spawn"
        assert args.request_timeout == 30.0

    def test_run_serve_graceful_signal_shutdown(
        self, monkeypatch, tmp_path, capsys
    ):
        """The --serve loop end to end, in process: serve a request,
        deliver the (captured) SIGTERM handler, and require the drain
        order — final panel printed, metrics flushed, exit 0."""
        import json
        import signal
        import threading
        import urllib.request

        handlers = {}
        monkeypatch.setattr(
            signal, "signal",
            lambda signum, handler: handlers.setdefault(signum, handler),
        )
        metrics_file = tmp_path / "final.prom"
        args = build_parser().parse_args([
            "--serve", "--port", "0", "--shards", "1",
            "--start-method", "thread",
            "--metrics-out", str(metrics_file),
        ])
        from repro.__main__ import run_serve

        status = {}

        def serve():
            status["code"] = run_serve(args)

        thread = threading.Thread(target=serve)
        thread.start()
        try:
            # Wait for the announce line to learn the bound port.
            address = None
            for _ in range(600):
                err = capsys.readouterr().err
                if " on http://" in err:
                    address = err.split(" on ")[1].split(" ")[0]
                    break
                thread.join(0.1)
            assert address, "serve loop never announced its address"
            body = json.dumps(
                {"question": "Where do you visit in Buffalo?"}
            ).encode("utf-8")
            request = urllib.request.Request(
                address + "/translate", data=body,
                headers={"Content-Type": "application/json"},
            )
            with urllib.request.urlopen(request, timeout=60) as response:
                assert response.status == 200
                assert json.loads(response.read())["ok"]
        finally:
            handlers[signal.SIGTERM](signal.SIGTERM, None)
            thread.join(120.0)
        assert not thread.is_alive()
        assert status["code"] == 0
        err = capsys.readouterr().err
        assert "== sharded serving ==" in err
        assert "identity: holds" in err
        exposition = metrics_file.read_text("utf-8")
        assert "serving_http_requests_total" in exposition


class TestSubprocess:
    def test_module_entry_point(self):
        completed = subprocess.run(
            [sys.executable, "-m", "repro",
             "Is chocolate milk good for kids?"],
            capture_output=True, text=True, timeout=120,
        )
        assert completed.returncode == 0
        assert 'Chocolate_Milk hasLabel "good for kids"' in (
            completed.stdout
        )


class TestScore:
    def test_score_single_pack(self, capsys):
        from repro.data.scenario import builtin_packs_dir

        pack = builtin_packs_dir() / "patients"
        status = main(["--score", "--pack", str(pack)])
        out = capsys.readouterr().out
        assert status == 0
        assert "POS tagging accuracy" in out
        assert "Dependency attachment" in out
        assert "Translation quality vs. gold queries" in out
        assert "patients" in out
        assert "ALL" in out

    def test_score_missing_pack_exits_two(self, tmp_path, capsys):
        status = main(["--score", "--pack", str(tmp_path / "nope")])
        assert status == 2
        assert "cannot load scenario pack" in capsys.readouterr().err

    def test_score_writes_json_artifact(self, tmp_path, capsys):
        import json as json_module

        from repro.data.scenario import builtin_packs_dir

        out_file = tmp_path / "accuracy.json"
        status = main([
            "--score", "--pack",
            str(builtin_packs_dir() / "patients"),
            "--json", str(out_file),
        ])
        assert status == 0
        data = json_module.loads(out_file.read_text())
        assert data["experiment"] == "accuracy"
        assert data["taggers"] == ["rules", "learned"]
        assert set(data["packs"]) == {"patients"}
        assert "overall" in data and "confusion_rules" in data

    def test_score_unwritable_json_exits_two(self, tmp_path, capsys):
        from repro.data.scenario import builtin_packs_dir

        status = main([
            "--score", "--pack",
            str(builtin_packs_dir() / "patients"),
            "--json", str(tmp_path / "missing-dir" / "out.json"),
        ])
        assert status == 2
        assert "cannot write" in capsys.readouterr().err
