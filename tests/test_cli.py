"""Tests for the ``python -m repro`` command-line interface."""

import subprocess
import sys

import pytest

from repro.__main__ import build_parser, main


class TestMainFunction:
    def test_translate_question(self, capsys):
        status = main(["Where do you visit in Buffalo?"])
        out = capsys.readouterr().out
        assert status == 0
        assert "SELECT VARIABLES" in out
        assert "[] visit $x" in out

    def test_admin_trace(self, capsys):
        status = main(["--admin", "Where do you visit in Buffalo?"])
        out = capsys.readouterr().out
        assert status == 0
        assert "nl-parsing" in out
        assert "final-query" in out

    def test_unsupported_question_exit_code(self, capsys):
        status = main(["How should I store coffee?"])
        err = capsys.readouterr().err
        assert status == 2
        assert "tip:" in err

    def test_execute_flag(self, capsys):
        status = main([
            "--execute", "--crowd-size", "40",
            "What are the most interesting places near Forest Hotel, "
            "Buffalo, we should visit in the fall?",
        ])
        out = capsys.readouterr().out
        assert status == 0
        assert "# crowd tasks:" in out
        assert "Delaware Park" in out

    def test_parser_defaults(self):
        args = build_parser().parse_args(["hello"])
        assert args.crowd_size == 120
        assert not args.execute


class TestSubprocess:
    def test_module_entry_point(self):
        completed = subprocess.run(
            [sys.executable, "-m", "repro",
             "Is chocolate milk good for kids?"],
            capture_output=True, text=True, timeout=120,
        )
        assert completed.returncode == 0
        assert 'Chocolate_Milk hasLabel "good for kids"' in (
            completed.stdout
        )
