"""Tests for the top-level public API surface."""

import repro


class TestPublicApi:
    def test_all_names_importable(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_quickstart_flow(self):
        nl2cm = repro.NL2CM()
        result = nl2cm.translate("Where do you visit in Buffalo?")
        assert isinstance(result.query, repro.OassisQuery)
        reparsed = repro.parse_oassisql(result.query_text)
        assert reparsed == result.query

    def test_docstring_example_runs(self):
        from repro.crowd.scenarios import buffalo_travel_truth
        from repro.data import load_merged_ontology

        nl2cm = repro.NL2CM()
        result = nl2cm.translate(
            "What are the most interesting places near Forest Hotel, "
            "Buffalo, we should visit in the fall?"
        )
        crowd = repro.SimulatedCrowd(
            buffalo_travel_truth(), size=150, seed=1
        )
        engine = repro.OassisEngine(load_merged_ontology(), crowd)
        answers = engine.evaluate(result.query)
        assert answers.bindings()
        assert all("x" in b for b in answers.bindings())
