#!/usr/bin/env python3
"""Demo stage (i): translate real-life forum questions, batch mode.

The paper's first demonstration step translates a set of questions
collected from question-and-answer platforms and shows "the
correspondences between different query parts and parts of the original
NL sentence".  This script runs every supported corpus question through
NL2CM and prints those correspondences: IX spans, the general parts, and
the resulting query.

Run:  python examples/travel_demo.py [domain]
      (domain: travel | shopping | health | food; default: travel)
"""

import sys

from repro import NL2CM
from repro.data.corpus import questions_by_domain


def main() -> None:
    domain = sys.argv[1] if len(sys.argv) > 1 else "travel"
    questions = [
        q for q in questions_by_domain(domain) if q.supported
    ]
    if not questions:
        print(f"no supported questions in domain {domain!r}")
        return

    nl2cm = NL2CM()
    for question in questions:
        print("=" * 72)
        print(f"[{question.id}] {question.text}")
        result = nl2cm.translate(question.text)

        print("\n  individual parts (to be mined from the crowd):")
        if result.ixs:
            for ix in result.ixs:
                print(f"    - {ix.span_text(result.graph)!r}"
                      f"  [{', '.join(sorted(ix.types))}]")
        else:
            print("    (none)")

        general = [
            t for t in result.query.where
        ]
        print("\n  general parts (answered from the ontology):")
        if general:
            for triple in general:
                from repro.oassisql.printer import format_triple
                print(f"    - {format_triple(triple)}")
        else:
            print("    (none)")

        print("\n  OASSIS-QL query:")
        for line in result.query_text.splitlines():
            print(f"    {line}")
        print()


if __name__ == "__main__":
    main()
