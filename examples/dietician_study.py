#!/usr/bin/env python3
"""The dietician scenario, end to end: NL -> OASSIS-QL -> crowd answers.

The paper's introduction motivates NL2CM with "a dietician wishing to
study the culinary preferences in some population, focusing on food
dishes rich in fiber": nutritional facts are general knowledge, eating
habits are individual.  This script

1. translates the dietician's question with NL2CM,
2. executes the query with the OASSIS engine over a simulated crowd
   whose ground truth we control, and
3. compares the mined answer with that ground truth.

Run:  python examples/dietician_study.py
"""

from repro import EngineConfig, NL2CM, OassisEngine, SimulatedCrowd
from repro.crowd.scenarios import dietician_truth, habit_fact_set
from repro.data import load_merged_ontology
from repro.rdf.ontology import KB

QUESTION = ("Which fiber-rich dishes do people like to eat for "
            "breakfast?")


def main() -> None:
    ontology = load_merged_ontology()
    nl2cm = NL2CM(ontology=ontology)

    print(f"The dietician asks:\n  {QUESTION}\n")
    result = nl2cm.translate(QUESTION)
    print("NL2CM translates it to:")
    print(result.query_text)
    print()

    truth = dietician_truth()
    crowd = SimulatedCrowd(truth, size=200, noise=0.08, seed=42)
    engine = OassisEngine(
        ontology, crowd, EngineConfig(max_sample=50)
    )

    answers = engine.evaluate(result.query)
    print(f"OASSIS asked the crowd {answers.tasks_used} questions, "
          f"for example:")
    for task in answers.tasks[:3]:
        print(f"  member #{task.member_id}: {task.question}"
              f"  -> {task.answer:.2f}")
    print()

    print("Mined result (fiber-rich dishes people eat for breakfast, "
          "support >= 0.1):")
    for outcome in answers.accepted:
        dish = outcome.binding["x"]
        estimate = max(outcome.supports.values())
        true_value = truth.support(
            habit_fact_set("eat", dish, ("for", KB.Breakfast))
        )
        print(f"  {ontology.label_of(dish):24s}"
              f"  estimated {estimate:.2f}  (true {true_value:.2f})")
    print()

    rejected = [o for o in answers.outcomes if not o.accepted]
    print("Below the threshold (correctly filtered out):")
    for outcome in rejected:
        dish = outcome.binding["x"]
        print(f"  {ontology.label_of(dish)}")


if __name__ == "__main__":
    main()
