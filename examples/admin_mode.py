#!/usr/bin/env python3
"""The administrator-mode monitor: intermediate outputs of every module.

The demo's third monitor "display[s] the intermediate outputs passed
between the NL2CM modules" (Section 4.2) to give the audience a peek
under the hood.  This script prints exactly that trace — verification,
POS tags + dependency graph, partial and completed IXs, the general
SPARQL triples, the individual OASSIS-QL triples, and the composed
query — with per-stage timings.

Run:  python examples/admin_mode.py ["your question"]
"""

import sys

from repro import NL2CM

DEFAULT_QUESTION = (
    "What are the most interesting places near Forest Hotel, Buffalo, "
    "we should visit in the fall?"
)


def main() -> None:
    question = (
        " ".join(sys.argv[1:]) if len(sys.argv) > 1 else DEFAULT_QUESTION
    )
    nl2cm = NL2CM()
    result = nl2cm.translate(question)

    print(f"question: {question}")
    print("#" * 72)
    print(result.trace.render())
    print("#" * 72)
    print(result.trace.render_tree())
    total = result.trace.total_seconds()
    print(f"total translation time: {total * 1000:.1f} ms")


if __name__ == "__main__":
    main()
