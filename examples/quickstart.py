#!/usr/bin/env python3
"""Quickstart: translate the paper's running example into OASSIS-QL.

Reproduces the paper's Figure 1 exactly: the question "What are the most
interesting places near Forest Hotel, Buffalo, we should visit in the
fall?" becomes a crowd-mining query whose WHERE clause selects places
from the geographic ontology and whose SATISFYING clause mines the
crowd's opinions (top-5 "interesting") and habits (visiting in the fall,
support >= 0.1).

Run:  python examples/quickstart.py
"""

from repro import NL2CM

QUESTION = (
    "What are the most interesting places near Forest Hotel, Buffalo, "
    "we should visit in the fall?"
)


def main() -> None:
    nl2cm = NL2CM()

    print(f"NL question:\n  {QUESTION}\n")

    result = nl2cm.translate(QUESTION)

    print("Detected individual expressions:")
    for ix in result.ixs:
        types = ", ".join(sorted(ix.types))
        print(f"  [{ix.kind:7s}] {ix.span_text(result.graph)!r}"
              f"  ({types})")
    print()

    print("Translated OASSIS-QL query (= the paper's Figure 1):")
    print(result.query_text)
    print()

    print("Query variables stand for:")
    for var, phrase in result.variable_phrases.items():
        print(f"  ${var} -> {phrase!r}")


if __name__ == "__main__":
    main()
