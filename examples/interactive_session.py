#!/usr/bin/env python3
"""Demo stage (ii)/(iii): the user-interaction points of Figures 3-6.

Walks through every optional interaction point of the paper's Section
4.1 with a scripted "user", printing what the web UI would show:

* Figure 3 — entering the question (with a verification warning for an
  unsupported one, including the rephrasing tips of stage (iii));
* Figure 4 — verifying uncertain IXs;
* the FREyA clarification dialogue ("which Buffalo did you mean?");
* Figure 5 — choosing the LIMIT / THRESHOLD values;
* Figure 6 — the final query.

Pass ``--console`` to answer the prompts yourself instead.

Run:  python examples/interactive_session.py [--console]
"""

import sys

from repro import ConsoleInteraction, NL2CM, VerificationError
from repro.ui.interaction import ScriptedInteraction


def scripted_walkthrough() -> None:
    nl2cm = NL2CM()

    # --- stage (iii): an unsupported question first -----------------------
    bad_question = "How should I store coffee?"
    print(f"User types (Figure 3):\n  {bad_question}\n")
    try:
        nl2cm.translate(bad_question)
    except VerificationError as err:
        print(f"NL2CM warns: {err}")
        for tip in err.tips:
            print(f"  tip: {tip}")
    print()

    # --- the rephrased question, with every interaction point -------------
    question = "Where do teenagers hang out in Buffalo?"
    print(f"User rephrases and asks:\n  {question}\n")

    # The scripted user: confirms the uncertain IX, picks Buffalo, NY,
    # sets the habit-frequency threshold to 0.2.
    user = ScriptedInteraction([[True], 0, 0.2])
    result = nl2cm.translate(question, interaction=user)

    for request, answer in user.transcript:
        print(f"NL2CM asks (cf. Figures 4-5):")
        print(f"  {request.prompt()}")
        print(f"User answers: {answer}\n")

    print("Final query (Figure 6):")
    print(result.query_text)


def console_walkthrough() -> None:
    nl2cm = NL2CM(interaction=ConsoleInteraction())
    print("Type a question (e.g. 'Where do you go hiking in the "
          "winter?'):")
    question = input("> ").strip()
    try:
        result = nl2cm.translate(question)
    except VerificationError as err:
        print(f"Not supported: {err}")
        for tip in err.tips:
            print(f"  tip: {tip}")
        return
    print("\nFinal query:")
    print(result.query_text)


if __name__ == "__main__":
    if "--console" in sys.argv:
        console_walkthrough()
    else:
        scripted_walkthrough()
